"""The Zipper facade: couple a producer application with a consumer application.

The library interface mirrors the paper's description: the simulation calls
``Zipper.write(block_id, data, block_size)`` and the analysis calls
``Zipper.read()``; everything else (buffering, pipelining, dual-channel
transfers, Preserve mode) happens in the runtime layer below.

Two levels of convenience are provided:

* :class:`Zipper` — an explicit session object giving access to the producer
  and consumer runtime modules, for applications that manage their own
  threads.
* :func:`zip_applications` — run a producer callable and a consumer callable
  on separate threads, wire them through a Zipper session, and return the
  end-to-end statistics.  This is what the examples and most tests use.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.blocks import BlockId, DataBlock
from repro.core.channels import FileChannel, NetworkChannel
from repro.core.config import ZipperConfig
from repro.core.consumer import ConsumerRuntime
from repro.core.producer import ProducerRuntime
from repro.core.stats import RuntimeStats

__all__ = ["Zipper", "ZipperResult", "zip_applications"]


class Zipper:
    """One producer/consumer coupling session of the threaded runtime."""

    def __init__(self, config: Optional[ZipperConfig] = None):
        self.config = config if config is not None else ZipperConfig()
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if self.config.spill_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="zipper-")
            spill_dir = Path(self._tempdir.name)
        else:
            spill_dir = Path(self.config.spill_dir)
        self.spill_dir = spill_dir
        self.stats = RuntimeStats()
        self.network = NetworkChannel(
            capacity=0,
            bandwidth=self.config.network_bandwidth,
            latency=self.config.network_latency,
        )
        self.file_channel = FileChannel(spill_dir, bandwidth=self.config.file_bandwidth)
        self.producer = ProducerRuntime(
            self.config, self.network, self.file_channel, self.stats
        )
        self.consumer = ConsumerRuntime(
            self.config, self.network, self.file_channel, self.stats
        )

    # -- simple pass-through API ------------------------------------------
    def write(self, block_id: BlockId, data: np.ndarray, **meta) -> float:
        """Producer-side entry point (``Zipper.write`` in the paper)."""
        return self.producer.write(block_id, data, **meta)

    def read(self, timeout: Optional[float] = None) -> Optional[DataBlock]:
        """Consumer-side entry point (``Zipper.read`` in the paper)."""
        return self.consumer.read(timeout=timeout)

    def release(self, block_id: BlockId) -> bool:
        return self.consumer.release(block_id)

    def start(self) -> "Zipper":
        self.producer.start()
        self.consumer.start()
        return self

    def finalize_producer(self) -> None:
        """Flush the producer side and signal end-of-stream to the consumer."""
        self.producer.close()

    def close(self) -> None:
        """Shut the whole session down (flushes the producer if still open)."""
        self.producer.close()
        self.consumer.join()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def abort(self) -> None:
        """Emergency shutdown used when one side of the coupling has failed.

        Closes and drains the producer buffer — releasing a producer blocked
        in ``write`` on a full buffer — and closes the consumer buffer —
        releasing the receiver thread (blocked delivering into it) and any
        ``read`` caller.  Undelivered blocks are dropped; the session cannot
        be used afterwards.
        """
        self.producer.buffer.close()
        self.producer.buffer.drain()
        self.consumer.buffer.close()

    def __enter__(self) -> "Zipper":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass
class ZipperResult:
    """Outcome of :func:`zip_applications`."""

    end_to_end_time: float
    producer_time: float
    consumer_time: float
    producer_result: Any
    consumer_result: Any
    stats: Dict[str, float] = field(default_factory=dict)
    config: Optional[ZipperConfig] = None

    @property
    def stall_time(self) -> float:
        return self.stats.get("producer_stall_time", 0.0)

    @property
    def blocks_produced(self) -> int:
        return int(self.stats.get("blocks_produced", 0))

    @property
    def blocks_stolen(self) -> int:
        return int(self.stats.get("blocks_stolen", 0))

    @property
    def steal_fraction(self) -> float:
        produced = self.stats.get("blocks_produced", 0.0)
        if produced <= 0:
            return 0.0
        return self.stats.get("blocks_stolen", 0.0) / produced


def zip_applications(
    produce: Callable[[ProducerRuntime], Any],
    analyze: Callable[[ConsumerRuntime], Any],
    config: Optional[ZipperConfig] = None,
    shutdown_timeout: float = 60.0,
) -> ZipperResult:
    """Run a producer callable and a consumer callable coupled through Zipper.

    ``produce`` receives the :class:`~repro.core.producer.ProducerRuntime` and
    calls ``write`` for every block it generates; ``analyze`` receives the
    :class:`~repro.core.consumer.ConsumerRuntime` and typically iterates
    ``consumer.blocks()``.  Both run concurrently on separate threads; the
    producer runtime is finalized automatically when ``produce`` returns.

    The first exception raised by either callable is re-raised here after
    both threads have stopped.  On that first error the session is aborted
    (buffers closed and drained) so the *other* side cannot stay blocked on a
    full or empty buffer — a raising consumer used to leave a producer stuck
    in ``ProducerBuffer.put`` forever — and every join is bounded by
    ``shutdown_timeout``.
    """
    session = Zipper(config)
    outcome: Dict[str, Any] = {}
    errors: List[BaseException] = []
    errors_lock = threading.Lock()

    def record_error(exc: BaseException) -> None:
        with errors_lock:
            first = not errors
            errors.append(exc)
        if first:
            # Unblock whichever peer thread is parked on a full/empty buffer
            # so the bounded joins below succeed instead of deadlocking.
            session.abort()

    def produce_wrapper() -> None:
        start = time.perf_counter()
        try:
            outcome["producer"] = produce(session.producer)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            record_error(exc)
        finally:
            outcome["producer_time"] = time.perf_counter() - start
            try:
                session.finalize_producer()
            except BaseException as exc:  # noqa: BLE001
                record_error(exc)

    def analyze_wrapper() -> None:
        start = time.perf_counter()
        try:
            outcome["consumer"] = analyze(session.consumer)
        except BaseException as exc:  # noqa: BLE001
            record_error(exc)
        finally:
            outcome["consumer_time"] = time.perf_counter() - start

    start = time.perf_counter()
    session.start()
    producer_thread = threading.Thread(
        target=produce_wrapper, name="zipper-app-producer", daemon=True
    )
    consumer_thread = threading.Thread(
        target=analyze_wrapper, name="zipper-app-consumer", daemon=True
    )
    producer_thread.start()
    consumer_thread.start()
    producer_thread.join(shutdown_timeout)
    consumer_thread.join(shutdown_timeout)
    stuck = producer_thread.is_alive() or consumer_thread.is_alive()
    if stuck:
        record_error(
            RuntimeError(
                "zip_applications application threads failed to stop within "
                f"{shutdown_timeout}s"
            )
        )
    else:
        try:
            session.consumer.join(timeout=shutdown_timeout)
        except RuntimeError as exc:
            record_error(exc)
    end_to_end = time.perf_counter() - start
    stats = session.stats.snapshot()
    session_config = session.config
    if session._tempdir is not None and not stuck:
        session._tempdir.cleanup()
        session._tempdir = None

    if errors:
        # Re-raise the *first* error: a failure on one side routinely causes
        # secondary BufferClosed errors on the other once the session aborts.
        raise errors[0]

    return ZipperResult(
        end_to_end_time=end_to_end,
        producer_time=outcome.get("producer_time", 0.0),
        consumer_time=outcome.get("consumer_time", 0.0),
        producer_result=outcome.get("producer"),
        consumer_result=outcome.get("consumer"),
        stats=stats,
        config=session_config,
    )
