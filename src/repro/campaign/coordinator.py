"""Campaign coordinator: lease shards out, merge results, survive restarts.

The coordinator owns two things: a :class:`~repro.campaign.lease.WorkBoard`
(in-memory scheduling state) and the campaign's durable
:class:`~repro.sweep.store.ResultStore`.  Workers interact with it only
through the JSON endpoints of :mod:`repro.campaign.protocol`, served by a
stdlib ``ThreadingHTTPServer`` — no third-party web framework.

**Crash safety is store-shaped.**  Every accepted record is appended to the
JSONL store before the worker gets its acknowledgement, and the board is
rebuilt from the store at construction: completed keys are marked done,
poison markers stay poisoned, and stamped attempt counts are restored, so a
coordinator killed at any instant resumes exactly where the store says it
was.  Leases are deliberately *not* persisted — after a restart they simply
re-expire on the workers' heartbeats and the unfinished cases are re-issued.

**Merging is dedup-on-append.**  The board decides per reported record
whether it is the first completion (append), a retryable failure (append +
backoff redispatch), poison (append with a ``poisoned`` stamp) or a
duplicate from a speculative/reclaimed copy (drop), so the store holds one
authoritative success per case no matter how many workers raced it — which
is what makes the canonical store byte-identical to a single-host sweep
(see ``docs/campaigns.md``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.campaign.lease import BackoffPolicy, WorkBoard
from repro.campaign.protocol import PROTOCOL_VERSION, campaign_cases
from repro.sweep.store import ResultStore

__all__ = ["Campaign", "CoordinatorServer"]


class Campaign:
    """Scheduling state plus durable store of one distributed sweep.

    Parameters
    ----------
    descriptor:
        The spec descriptor (see :func:`~repro.campaign.protocol.spec_descriptor`)
        naming the grid to run.
    store:
        The campaign's result store (path or :class:`ResultStore`); existing
        records seed the board, so pointing a fresh coordinator at a partial
        store *is* the resume path.
    shard_size / lease_seconds / max_attempts / backoff:
        Work-distribution knobs, forwarded to the :class:`WorkBoard`.
    case_timeout_seconds:
        Per-case wall-clock budget workers must enforce (``None`` disables);
        advertised through ``/spec`` so every worker applies the same limit.
    """

    def __init__(
        self,
        descriptor: Dict[str, object],
        store: Union[ResultStore, str, Path],
        *,
        shard_size: int = 4,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        backoff: Optional[BackoffPolicy] = None,
        case_timeout_seconds: Optional[float] = None,
    ):
        self.descriptor = dict(descriptor)
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.case_timeout_seconds = case_timeout_seconds
        self.lease_seconds = float(lease_seconds)
        self.cases = campaign_cases(self.descriptor)
        self.board = WorkBoard(
            [(case.label, case.config_digest) for case in self.cases],
            shard_size=shard_size,
            lease_seconds=lease_seconds,
            max_attempts=max_attempts,
            backoff=backoff,
        )
        self.lock = threading.Lock()
        #: worker name -> wall-clock instant of its last request (census only).
        self.workers_seen: Dict[str, float] = {}
        self.records_merged = 0
        self._resume()

    # -- resume ------------------------------------------------------------
    def _resume(self) -> None:
        """Seed the board from whatever the store already holds."""
        for record in self.store.iter_records():
            label = str(record.get("label"))
            digest = str(record.get("config_hash", ""))
            if record.get("poisoned"):
                self.board.mark_poisoned(label, digest)
            elif record.get("ok", True):
                self.board.mark_done(label, digest)
            else:
                # A failed attempt from a previous incarnation: keep its
                # budget spent so restarts cannot retry a case forever.
                self.board.restore_attempts(label, digest, int(record.get("attempt", 1)))

    # -- endpoint handlers -------------------------------------------------
    def _note_worker(self, worker: str) -> None:
        if worker:
            self.workers_seen[worker] = time.time()

    def handle_spec(self) -> Dict[str, object]:
        """``GET /spec`` — everything a joining worker needs."""
        with self.lock:
            return {
                "version": PROTOCOL_VERSION,
                "descriptor": dict(self.descriptor),
                "lease_seconds": self.lease_seconds,
                "case_timeout_seconds": self.case_timeout_seconds,
                "total_cases": len(self.cases),
                "store": str(self.store.path),
            }

    def handle_lease(self, worker: str) -> Dict[str, object]:
        """``POST /lease`` — a shard lease, a wait hint, or completion."""
        with self.lock:
            self._note_worker(worker)
            if self.board.complete:
                return {"status": "complete", "counts": self.board.counts()}
            lease = self.board.lease(worker)
            if lease is None:
                wait = self.board.next_retry_in()
                retry_after = min(max(wait, 0.05), 5.0) if wait is not None else 0.5
                return {"status": "wait", "retry_after": round(retry_after, 3)}
            return {
                "status": "lease",
                "lease_id": lease.lease_id,
                "speculative": lease.speculative,
                "deadline_seconds": self.lease_seconds,
                "cases": [
                    {
                        "index": index,
                        "label": self.cases[index].label,
                        "config_hash": self.cases[index].config_digest,
                    }
                    for index in lease.indices
                ],
            }

    def handle_heartbeat(self, worker: str, lease_id: str) -> Dict[str, object]:
        """``POST /heartbeat`` — extend a lease (``ok=False`` means abandon)."""
        with self.lock:
            self._note_worker(worker)
            return {"ok": self.board.heartbeat(lease_id)}

    def handle_results(
        self,
        worker: str,
        lease_id: str,
        records: List[Dict[str, object]],
        done: bool,
    ) -> Dict[str, object]:
        """``POST /results`` — merge a record batch; ``done`` retires the lease.

        Records are accepted regardless of whether ``lease_id`` is still
        live (or even known — the coordinator may have restarted since the
        lease was issued): completed work is completed work.  The board
        dedupes racing copies, and every appended record is stamped with its
        provenance (``worker``, ``shard``, ``attempt``) before hitting disk.
        """
        with self.lock:
            self._note_worker(worker)
            accepted = dropped = 0
            for payload in records:
                if not isinstance(payload, dict):
                    continue
                label = str(payload.get("label"))
                digest = str(payload.get("config_hash", ""))
                action = self.board.record_result(
                    label,
                    digest,
                    bool(payload.get("ok", True)),
                    str(payload.get("error_kind", "")),
                )
                if action in ("duplicate", "unknown"):
                    dropped += 1
                    continue
                entry = self.board._by_key[(label, digest)]
                stamped = dict(payload)
                stamped["worker"] = worker
                stamped["shard"] = lease_id
                # Attempt number of *this* execution: failures already
                # counted it; a success is one past the failures so far.
                stamped["attempt"] = entry.attempts if action != "done" else entry.attempts + 1
                if action == "poisoned":
                    stamped["poisoned"] = True
                self.store.append(stamped)
                self.records_merged += 1
                accepted += 1
            if done and lease_id:
                self.board.release(lease_id)
            return {
                "ok": True,
                "accepted": accepted,
                "dropped": dropped,
                "complete": self.board.complete,
            }

    def handle_status(self) -> Dict[str, object]:
        """``GET /status`` — live board snapshot plus campaign metadata."""
        with self.lock:
            snapshot = self.board.snapshot()
            snapshot.update(
                {
                    "campaign": str(self.descriptor.get("figure")),
                    "store": str(self.store.path),
                    "records_merged": self.records_merged,
                    "workers": sorted(self.workers_seen),
                }
            )
            return snapshot

    @property
    def complete(self) -> bool:
        """Whether every case is done or poisoned."""
        with self.lock:
            return self.board.complete


class _CampaignHandler(BaseHTTPRequestHandler):
    """Routes the protocol endpoints onto a :class:`Campaign` (internal)."""

    #: Injected by :class:`CoordinatorServer`.
    campaign: Campaign

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (status lives at ``/status``)."""

    def _send(self, payload: Dict[str, object], status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b"{}"
        decoded = json.loads(raw.decode("utf-8"))
        if not isinstance(decoded, dict):
            raise ValueError("request body must be a JSON object")
        return decoded

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        """Serve ``/spec`` and ``/status``."""
        if self.path == "/spec":
            self._send(self.campaign.handle_spec())
        elif self.path == "/status":
            self._send(self.campaign.handle_status())
        else:
            self._send({"error": f"unknown endpoint {self.path!r}"}, status=404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        """Serve ``/lease``, ``/heartbeat`` and ``/results``."""
        try:
            body = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send({"error": f"bad request body: {exc}"}, status=400)
            return
        worker = str(body.get("worker", ""))
        if self.path == "/lease":
            self._send(self.campaign.handle_lease(worker))
        elif self.path == "/heartbeat":
            self._send(self.campaign.handle_heartbeat(worker, str(body.get("lease_id", ""))))
        elif self.path == "/results":
            records = body.get("records", [])
            if not isinstance(records, list):
                self._send({"error": "records must be a list"}, status=400)
                return
            self._send(
                self.campaign.handle_results(
                    worker,
                    str(body.get("lease_id", "")),
                    records,
                    bool(body.get("done", False)),
                )
            )
        else:
            self._send({"error": f"unknown endpoint {self.path!r}"}, status=404)


class CoordinatorServer:
    """A :class:`Campaign` behind a threading HTTP server.

    ``port=0`` binds an ephemeral port; read :attr:`url` after construction.
    The server thread is a daemon, so a crashed driver never hangs on it.
    """

    def __init__(self, campaign: Campaign, host: str = "127.0.0.1", port: int = 0):
        self.campaign = campaign
        handler = type("_BoundHandler", (_CampaignHandler,), {"campaign": campaign})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """The coordinator's base URL (``http://host:port``)."""
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        """Serve requests on a daemon thread (idempotent); returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="campaign-coordinator",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self.httpd.shutdown()
            self._thread.join()
            self._thread = None
        self.httpd.server_close()

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    def serve_until_complete(
        self, poll_seconds: float = 0.2, timeout: Optional[float] = None
    ) -> bool:
        """Block until the campaign completes; ``False`` on ``timeout``.

        The server keeps answering ``/status`` during and after the wait;
        call :meth:`stop` when done with it.
        """
        self.start()
        pacer = threading.Event()
        deadline = time.monotonic() + timeout if timeout is not None else None
        while not self.campaign.complete:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            pacer.wait(poll_seconds)
        return True
