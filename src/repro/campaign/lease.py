"""Lease-based work accounting for distributed sweep campaigns.

The :class:`WorkBoard` is the coordinator's authoritative scheduling state:
every case of a prepared :class:`~repro.sweep.spec.SweepSpec` is one entry
that moves ``pending -> leased -> done`` (or ``poisoned``).  Workers claim
shards of pending cases as time-limited :class:`Lease`\\ s and keep them
alive with heartbeats; a lease whose deadline passes is *reclaimed* and its
unfinished cases become leasable again, so a crashed or hung worker can
never strand its shard.  When nothing is pending but leases are still in
flight, an idle worker is handed a *speculative* duplicate of the
longest-held lease (work-stealing from the straggler) — whichever copy
reports a case first wins and the duplicate record is dropped.

Failures follow the :func:`~repro.sweep.runner.classify_error` taxonomy:
retryable kinds (``transient``, ``timeout``, ``lost``) are redispatched
after a deterministic exponential :class:`BackoffPolicy` delay until the
per-case attempt budget is spent, then the case is **poisoned** — recorded
and never retried, so a crashing scenario consumes its budget instead of
wedging the campaign.  ``permanent`` failures are poisoned immediately.

The board is pure in-memory bookkeeping (persistence is the result store's
job — see :mod:`repro.campaign.coordinator`) and is not thread-safe; the
coordinator guards it with one lock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["BackoffPolicy", "CaseEntry", "Lease", "WorkBoard"]


def _stable_hash(text: str) -> int:
    """64-bit FNV-1a digest of ``text``, stable across processes and hosts."""
    h = 1469598103934665603
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential retry backoff with deterministic, label-seeded jitter.

    ``delay(label, attempt)`` grows as ``base * multiplier**(attempt-1)`` up
    to ``cap_seconds``, scaled by a jitter factor in ``[1-jitter, 1+jitter]``
    derived from a stable hash of ``(seed, label, attempt)`` — so retries of
    different cases decorrelate (no thundering herd after a coordinator
    restart) while the whole schedule stays reproducible for tests and
    post-mortems.
    """

    base_seconds: float = 0.25
    multiplier: float = 2.0
    cap_seconds: float = 8.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, label: str, attempt: int) -> float:
        """Seconds to hold back the ``attempt``-th retry of ``label``."""
        power = max(0, int(attempt) - 1)
        raw = min(self.cap_seconds, self.base_seconds * self.multiplier**power)
        if self.jitter <= 0:
            return raw
        frac = (_stable_hash(f"{self.seed}:{label}:{attempt}") % 1_000_000) / 1_000_000.0
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * frac)

    def schedule(self, label: str, attempts: int) -> List[float]:
        """The full delay sequence for ``attempts`` retries of one case."""
        return [self.delay(label, attempt) for attempt in range(1, attempts + 1)]


class CaseEntry:
    """Scheduling state of one sweep case on the board."""

    __slots__ = (
        "index",
        "label",
        "config_hash",
        "status",
        "attempts",
        "not_before",
        "last_error_kind",
    )

    def __init__(self, index: int, label: str, config_hash: str):
        self.index = index
        self.label = label
        self.config_hash = config_hash
        #: ``pending`` | ``leased`` | ``done`` | ``poisoned``.
        self.status = "pending"
        #: Failed executions so far (the attempt budget counts these).
        self.attempts = 0
        #: Earliest clock instant the case may be leased again (backoff).
        self.not_before = 0.0
        self.last_error_kind = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CaseEntry {self.index} {self.label!r} {self.status}>"


@dataclass
class Lease:
    """One worker's time-limited claim on a shard of case indices."""

    lease_id: str
    worker: str
    indices: Tuple[int, ...]
    deadline: float
    issued_at: float
    #: Set on a work-stealing duplicate of another live lease.
    speculative: bool = False
    #: The duplicated lease's id (speculative leases only).
    origin: Optional[str] = None


class WorkBoard:
    """Lease, retry and poison accounting over one campaign's case list.

    Parameters
    ----------
    cases:
        The prepared case identities, as ``(label, config_hash)`` pairs in
        spec order (see :func:`~repro.sweep.runner.prepare_cases`).
    shard_size:
        Most cases handed out per lease.
    lease_seconds:
        Lease lifetime; heartbeats extend the deadline by this much.
    max_attempts:
        Failed executions a case may accumulate before it is poisoned.
    backoff:
        Retry-delay policy (defaults to :class:`BackoffPolicy`'s defaults).
    clock:
        Monotonic time source, injectable for tests.
    """

    #: ``error_kind`` values worth retrying; anything else poisons at once.
    RETRYABLE_KINDS = frozenset({"", "transient", "timeout", "lost"})

    def __init__(
        self,
        cases: Sequence[Tuple[str, str]],
        *,
        shard_size: int = 4,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        backoff: Optional[BackoffPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.shard_size = int(shard_size)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._clock = clock
        self.entries: List[CaseEntry] = [
            CaseEntry(index, label, digest) for index, (label, digest) in enumerate(cases)
        ]
        self._by_key: Dict[Tuple[str, str], CaseEntry] = {
            (entry.label, entry.config_hash): entry for entry in self.entries
        }
        if len(self._by_key) != len(self.entries):
            raise ValueError("duplicate (label, config_hash) keys in the case list")
        self.leases: Dict[str, Lease] = {}
        self._lease_counter = 0
        # Campaign-lifetime counters, surfaced by /status.
        self.leases_issued = 0
        self.leases_expired = 0
        self.leases_stolen = 0
        self.duplicates_dropped = 0
        self.retries_scheduled = 0

    # -- resume seeding ----------------------------------------------------
    def mark_done(self, label: str, config_hash: str) -> bool:
        """Mark a case completed (resume from a store); ``False`` if unknown."""
        entry = self._by_key.get((label, config_hash))
        if entry is None:
            return False
        entry.status = "done"
        return True

    def mark_poisoned(self, label: str, config_hash: str) -> bool:
        """Mark a case poisoned (resume from a store); ``False`` if unknown."""
        entry = self._by_key.get((label, config_hash))
        if entry is None:
            return False
        if entry.status != "done":
            entry.status = "poisoned"
        return True

    def restore_attempts(self, label: str, config_hash: str, attempts: int) -> None:
        """Restore a case's failure count from stored attempt stamps."""
        entry = self._by_key.get((label, config_hash))
        if entry is not None and attempts > entry.attempts:
            entry.attempts = int(attempts)

    # -- leasing -----------------------------------------------------------
    def _live_cover(self, index: int) -> bool:
        """Whether any live lease still claims ``index``."""
        return any(index in lease.indices for lease in self.leases.values())

    def _release_indices(self, lease: Lease) -> None:
        for index in lease.indices:
            entry = self.entries[index]
            if entry.status == "leased" and not self._live_cover(index):
                entry.status = "pending"

    def reclaim_expired(self) -> List[Lease]:
        """Drop every lease past its deadline and free its unfinished cases."""
        now = self._clock()
        expired = [lease for lease in self.leases.values() if lease.deadline <= now]
        for lease in expired:
            del self.leases[lease.lease_id]
            self.leases_expired += 1
            self._release_indices(lease)
        return expired

    def _issue(
        self, worker: str, indices: Tuple[int, ...], speculative: bool, origin: Optional[str]
    ) -> Lease:
        now = self._clock()
        self._lease_counter += 1
        lease = Lease(
            lease_id=f"L{self._lease_counter:06d}",
            worker=worker,
            indices=indices,
            deadline=now + self.lease_seconds,
            issued_at=now,
            speculative=speculative,
            origin=origin,
        )
        self.leases[lease.lease_id] = lease
        for index in indices:
            self.entries[index].status = "leased"
        self.leases_issued += 1
        if speculative:
            self.leases_stolen += 1
        return lease

    def lease(self, worker: str) -> Optional[Lease]:
        """Claim the next shard for ``worker`` (or steal one; ``None`` = wait).

        Expired leases are reclaimed first.  Pending cases whose backoff
        window has passed are handed out in spec order, up to
        ``shard_size`` per lease.  With nothing pending, the longest-held
        live lease of *another* worker that has no duplicate yet is copied
        speculatively.  ``None`` means there is genuinely nothing to run
        right now (everything done, poisoned, backoff-delayed, or already
        doubly leased).
        """
        self.reclaim_expired()
        now = self._clock()
        ready = [
            entry.index
            for entry in self.entries
            if entry.status == "pending" and entry.not_before <= now
        ]
        if ready:
            return self._issue(worker, tuple(ready[: self.shard_size]), False, None)
        duplicated = {lease.origin for lease in self.leases.values() if lease.origin}
        candidates = []
        for lease in self.leases.values():
            if lease.speculative or lease.worker == worker or lease.lease_id in duplicated:
                continue
            unfinished = tuple(
                index for index in lease.indices if self.entries[index].status == "leased"
            )
            if unfinished:
                candidates.append((lease.issued_at, lease.lease_id, unfinished))
        if not candidates:
            return None
        candidates.sort()
        _issued_at, origin_id, unfinished = candidates[0]
        return self._issue(worker, unfinished, True, origin_id)

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease's deadline; ``False`` if it is gone (abandon)."""
        lease = self.leases.get(lease_id)
        if lease is None:
            return False
        lease.deadline = self._clock() + self.lease_seconds
        return True

    def release(self, lease_id: str) -> None:
        """Retire a lease (worker finished or abandoned its shard)."""
        lease = self.leases.pop(lease_id, None)
        if lease is not None:
            self._release_indices(lease)

    def next_retry_in(self) -> Optional[float]:
        """Seconds until the earliest backoff-delayed case becomes leasable."""
        now = self._clock()
        waits = [
            entry.not_before - now
            for entry in self.entries
            if entry.status == "pending" and entry.not_before > now
        ]
        return min(waits) if waits else None

    # -- results -----------------------------------------------------------
    def record_result(
        self, label: str, config_hash: str, ok: bool, error_kind: str = ""
    ) -> str:
        """Account one reported execution; returns the action taken.

        ``"done"`` — first successful report, record it.  ``"retry"`` — a
        retryable failure with budget left, redispatched after backoff.
        ``"poisoned"`` — the failure exhausted the budget (or is permanent);
        record it as poison.  ``"duplicate"`` — a slower speculative copy of
        an already-recorded case, drop it.  ``"unknown"`` — the key is not
        part of this campaign.
        """
        entry = self._by_key.get((label, config_hash))
        if entry is None:
            return "unknown"
        if entry.status == "done":
            self.duplicates_dropped += 1
            return "duplicate"
        if ok:
            entry.status = "done"
            return "done"
        if entry.status == "poisoned":
            self.duplicates_dropped += 1
            return "duplicate"
        entry.attempts += 1
        entry.last_error_kind = error_kind
        if error_kind not in self.RETRYABLE_KINDS or entry.attempts >= self.max_attempts:
            entry.status = "poisoned"
            return "poisoned"
        entry.status = "pending"
        entry.not_before = self._clock() + self.backoff.delay(label, entry.attempts)
        self.retries_scheduled += 1
        return "retry"

    # -- introspection -----------------------------------------------------
    @property
    def complete(self) -> bool:
        """Whether every case is done or poisoned (nothing left to run)."""
        return all(entry.status in ("done", "poisoned") for entry in self.entries)

    def counts(self) -> Dict[str, int]:
        """Entry counts by status, plus the total."""
        out = {"total": len(self.entries), "pending": 0, "leased": 0, "done": 0, "poisoned": 0}
        for entry in self.entries:
            out[entry.status] += 1
        return out

    def poisoned(self) -> List[Tuple[str, str, str]]:
        """The quarantined cases as ``(label, config_hash, last_error_kind)``."""
        return [
            (entry.label, entry.config_hash, entry.last_error_kind)
            for entry in self.entries
            if entry.status == "poisoned"
        ]

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe status summary (counts, live leases, lifetime counters)."""
        now = self._clock()
        return {
            "counts": self.counts(),
            "complete": self.complete,
            "leases": [
                {
                    "lease_id": lease.lease_id,
                    "worker": lease.worker,
                    "cases": len(lease.indices),
                    "expires_in": round(lease.deadline - now, 3),
                    "speculative": lease.speculative,
                }
                for _, lease in sorted(self.leases.items())
            ],
            "counters": {
                "leases_issued": self.leases_issued,
                "leases_expired": self.leases_expired,
                "leases_stolen": self.leases_stolen,
                "retries_scheduled": self.retries_scheduled,
                "duplicates_dropped": self.duplicates_dropped,
            },
            "poisoned": [
                {"label": label, "config_hash": digest, "error_kind": kind}
                for label, digest, kind in self.poisoned()
            ],
        }
