"""Command-line campaign driver: ``python -m repro.sweep campaign ...``.

Three subcommands cover the whole lifecycle::

    # host A: shard figure2 into leases, serve until every case lands
    python -m repro.sweep campaign serve figure2 --steps 2 --sim-ranks 2 \\
        --store results/figure2.jsonl --port 8765

    # hosts B, C, ...: work shards until the campaign completes
    python -m repro.sweep campaign work http://hostA:8765

    # anyone: inspect live progress
    python -m repro.sweep campaign status http://hostA:8765

``serve`` is restart-safe: killing it and re-running the same command with
the same ``--store`` resumes from the records already on disk.  Exit codes:
``0`` all cases succeeded, ``4`` the campaign completed but quarantined
poison cases, ``5`` ``serve --max-seconds`` expired first.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import List, Optional

from repro.campaign.coordinator import Campaign, CoordinatorServer
from repro.campaign.lease import BackoffPolicy
from repro.campaign.protocol import (
    DESCRIPTOR_KNOBS,
    CoordinatorClient,
    CoordinatorUnreachable,
    spec_descriptor,
)
from repro.campaign.worker import CampaignWorker

__all__ = ["main"]


def _add_descriptor_arguments(parser: argparse.ArgumentParser) -> None:
    """The grid-downsizing knobs, mirroring the plain sweep CLI."""
    parser.add_argument("--steps", type=int, default=DESCRIPTOR_KNOBS["steps"],
                        help="workflow steps per scenario")
    parser.add_argument("--steps-cap", type=int, default=DESCRIPTOR_KNOBS["steps_cap"],
                        help="step cap for figure12/13")
    parser.add_argument("--sim-ranks", type=int, default=DESCRIPTOR_KNOBS["sim_ranks"],
                        help="representative simulation ranks")
    parser.add_argument("--data-mib", type=int, default=DESCRIPTOR_KNOBS["data_mib"],
                        help="per-rank MiB for the synthetic figures")
    parser.add_argument("--cores", default=DESCRIPTOR_KNOBS["cores"],
                        help="comma-separated core counts (figure-dependent)")


def _parser() -> argparse.ArgumentParser:
    from repro.sweep.cli import FIGURES

    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep campaign",
        description="Fault-tolerant distributed sweep campaigns (coordinator + workers).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="shard a figure sweep and coordinate workers")
    serve.add_argument("figure", choices=FIGURES, help="which figure's scenario grid to run")
    _add_descriptor_arguments(serve)
    serve.add_argument("--store", required=True,
                       help="JSONL result store path (resume + durable state)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    serve.add_argument("--shard-size", type=int, default=4, help="cases per lease")
    serve.add_argument("--lease-seconds", type=float, default=30.0,
                       help="lease lifetime; heartbeats extend it")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="failed executions before a case is poisoned")
    serve.add_argument("--backoff-base", type=float, default=0.25,
                       help="first retry delay in seconds")
    serve.add_argument("--backoff-seed", type=int, default=0,
                       help="seed of the deterministic retry jitter")
    serve.add_argument("--case-timeout", type=float, default=None,
                       help="per-case wall-clock budget enforced by workers")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="give up serving after this long (exit code 5)")
    serve.add_argument("--linger-seconds", type=float, default=2.0,
                       help="keep serving this long after completion so "
                            "workers observe the campaign is done")

    work = commands.add_parser("work", help="run leased shards against a coordinator")
    work.add_argument("url", help="coordinator base URL, e.g. http://127.0.0.1:8765")
    work.add_argument("--name", default=None, help="worker identity (default host-pid)")
    work.add_argument("--throttle-seconds", type=float, default=0.0,
                      help="pause before each case (chaos-test knob)")
    work.add_argument("--give-up-seconds", type=float, default=60.0,
                      help="how long to ride out an unreachable coordinator")

    status = commands.add_parser("status", help="print a coordinator's live status")
    status.add_argument("url", help="coordinator base URL")
    status.add_argument("--json", action="store_true", help="print the raw JSON snapshot")
    return parser


def _serve(args: argparse.Namespace) -> int:
    descriptor = spec_descriptor(
        args.figure,
        steps=args.steps,
        steps_cap=args.steps_cap,
        sim_ranks=args.sim_ranks,
        data_mib=args.data_mib,
        cores=args.cores,
    )
    campaign = Campaign(
        descriptor,
        args.store,
        shard_size=args.shard_size,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        backoff=BackoffPolicy(base_seconds=args.backoff_base, seed=args.backoff_seed),
        case_timeout_seconds=args.case_timeout,
    )
    counts = campaign.board.counts()
    server = CoordinatorServer(campaign, host=args.host, port=args.port)
    print(
        f"campaign {args.figure}: {counts['total']} cases "
        f"({counts['done']} done, {counts['pending']} pending) "
        f"listening on {server.url}",
        flush=True,
    )
    try:
        finished = server.serve_until_complete(timeout=args.max_seconds)
        if finished and args.linger_seconds > 0:
            # Workers polling /lease learn of completion and exit cleanly
            # instead of retrying a vanished coordinator until they give up.
            threading.Event().wait(args.linger_seconds)
    finally:
        snapshot = campaign.handle_status()
        server.stop()
    counts = snapshot["counts"]
    counters = snapshot["counters"]
    if not finished:
        print(
            f"campaign timed out after {args.max_seconds:g}s: "
            f"done={counts['done']} poisoned={counts['poisoned']} "
            f"pending={counts['pending']} leased={counts['leased']}",
            file=sys.stderr,
        )
        return 5
    print(
        f"campaign complete: done={counts['done']} poisoned={counts['poisoned']} "
        f"leases={counters['leases_issued']} stolen={counters['leases_stolen']} "
        f"retries={counters['retries_scheduled']} "
        f"duplicates={counters['duplicates_dropped']}",
        flush=True,
    )
    for poison in snapshot["poisoned"]:
        print(
            f"poisoned: {poison['label']} ({poison['error_kind'] or 'unknown'})",
            file=sys.stderr,
        )
    return 4 if counts["poisoned"] else 0


def _work(args: argparse.Namespace) -> int:
    worker = CampaignWorker(
        args.url,
        name=args.name,
        throttle_seconds=args.throttle_seconds,
        give_up_seconds=args.give_up_seconds,
    )
    print(f"worker {worker.name}: joining {args.url}", flush=True)
    try:
        stats = worker.run()
    except CoordinatorUnreachable as exc:
        print(f"worker {worker.name}: coordinator unreachable: {exc}", file=sys.stderr)
        return 3
    print(
        f"worker {worker.name}: done — leases={stats['leases_taken']} "
        f"cases={stats['cases_run']} failed={stats['cases_failed']} "
        f"records={stats['records_sent']}",
        flush=True,
    )
    return 0


def _status(args: argparse.Namespace) -> int:
    try:
        snapshot = CoordinatorClient(args.url).status()
    except CoordinatorUnreachable as exc:
        print(f"coordinator unreachable: {exc}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    counts = snapshot.get("counts", {})
    counters = snapshot.get("counters", {})
    print(
        f"campaign {snapshot.get('campaign')}: "
        f"{counts.get('done', 0)}/{counts.get('total', 0)} done, "
        f"{counts.get('leased', 0)} leased, {counts.get('pending', 0)} pending, "
        f"{counts.get('poisoned', 0)} poisoned"
    )
    print(
        f"  leases issued={counters.get('leases_issued', 0)} "
        f"expired={counters.get('leases_expired', 0)} "
        f"stolen={counters.get('leases_stolen', 0)} "
        f"retries={counters.get('retries_scheduled', 0)} "
        f"duplicates={counters.get('duplicates_dropped', 0)}"
    )
    for lease in snapshot.get("leases", []):
        kind = "speculative" if lease.get("speculative") else "primary"
        print(
            f"  lease {lease.get('lease_id')} -> {lease.get('worker')} "
            f"({lease.get('cases')} cases, {kind}, "
            f"expires in {lease.get('expires_in')}s)"
        )
    workers = snapshot.get("workers", [])
    if workers:
        print(f"  workers seen: {', '.join(str(w) for w in workers)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.sweep campaign``; returns the exit code."""
    args = _parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "work":
        return _work(args)
    return _status(args)


if __name__ == "__main__":
    raise SystemExit(main())
