"""Fault-tolerant distributed sweep campaigns.

A *campaign* runs one figure sweep across many hosts: a coordinator shards
the prepared case list into lease-based work units and workers execute
them, streaming records back into one durable
:class:`~repro.sweep.store.ResultStore`.  The package is stdlib-only and
survives worker crashes, hangs, stragglers and coordinator restarts; the
merged store's canonical view is byte-identical to a single-host run of
the same spec.  See ``docs/campaigns.md`` for the full design.

Layout:

* :mod:`repro.campaign.lease` — the :class:`WorkBoard` (leases, heartbeats,
  retry backoff, work-stealing, poison quarantine).
* :mod:`repro.campaign.protocol` — spec descriptors and the JSON-over-HTTP
  wire protocol (:class:`CoordinatorClient`).
* :mod:`repro.campaign.coordinator` — :class:`Campaign` state +
  :class:`CoordinatorServer` (stdlib ``http.server``).
* :mod:`repro.campaign.worker` — :class:`CampaignWorker` (lease, run,
  stream, heartbeat).
* :mod:`repro.campaign.cli` — ``python -m repro.sweep campaign
  serve|work|status``.
* :mod:`repro.campaign.bench` — the ``campaign`` overhead suite of
  ``python -m repro.bench``.
"""

from repro.campaign.coordinator import Campaign, CoordinatorServer
from repro.campaign.lease import BackoffPolicy, CaseEntry, Lease, WorkBoard
from repro.campaign.protocol import (
    PROTOCOL_VERSION,
    CoordinatorClient,
    CoordinatorUnreachable,
    campaign_cases,
    resolve_spec,
    spec_descriptor,
)
from repro.campaign.worker import CampaignWorker

__all__ = [
    "BackoffPolicy",
    "Campaign",
    "CampaignWorker",
    "CaseEntry",
    "CoordinatorClient",
    "CoordinatorServer",
    "CoordinatorUnreachable",
    "Lease",
    "PROTOCOL_VERSION",
    "WorkBoard",
    "campaign_cases",
    "resolve_spec",
    "spec_descriptor",
]
