"""Campaign worker: lease shards, run cases, stream records, heartbeat.

A :class:`CampaignWorker` is deliberately stateless between shards — all
durable state lives in the coordinator's store.  It joins by fetching the
campaign's spec descriptor, expands the *same* prepared case list locally
(see :func:`~repro.campaign.protocol.campaign_cases`), and then loops:
lease a shard, execute its cases one by one, and stream each record back
the moment it exists, so a worker killed mid-shard loses at most the case
it was running.

Robustness behaviours:

* **Heartbeats** — a daemon pump extends the lease at a third of its
  deadline; a heartbeat answered ``ok=false`` means the coordinator
  reclaimed the shard (this worker straggled and someone stole the work),
  so the rest of the shard is abandoned rather than raced redundantly.
* **Coordinator outages** — every call retries
  :class:`~repro.campaign.protocol.CoordinatorUnreachable` with capped
  backoff for up to ``give_up_seconds``; a coordinator restart is therefore
  invisible to workers apart from the pause.
* **Spec drift** — each leased case's ``(label, config_hash)`` is checked
  against the locally expanded grid; any mismatch (version skew between
  hosts) aborts the worker loudly before it can pollute the store.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Callable, Dict, List, Optional

from repro.campaign.protocol import CoordinatorClient, CoordinatorUnreachable, campaign_cases
from repro.sweep.runner import SweepRecord, SweepRunner, classify_error

__all__ = ["CampaignWorker"]


class CampaignWorker:
    """Run leased shards of a campaign against a coordinator URL.

    Parameters
    ----------
    url:
        The coordinator's base URL (``http://host:port``).
    name:
        Worker identity shown in leases and stamped on records; defaults to
        ``<hostname>-<pid>``.
    throttle_seconds:
        Pause before each case — a test/demo knob that widens the window in
        which chaos harnesses can kill a worker mid-shard.
    give_up_seconds:
        Total budget for retrying an unreachable coordinator before the
        worker gives up and raises.
    failure_hook:
        Optional callable invoked with each case label before execution;
        an exception it raises is recorded as that case's failure (test
        seam for deterministic fault injection without subprocess games).
    """

    def __init__(
        self,
        url: str,
        name: Optional[str] = None,
        *,
        throttle_seconds: float = 0.0,
        give_up_seconds: float = 60.0,
        request_timeout: float = 10.0,
        failure_hook: Optional[Callable[[str], None]] = None,
    ):
        self.client = CoordinatorClient(url, timeout=request_timeout)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.throttle_seconds = float(throttle_seconds)
        self.give_up_seconds = float(give_up_seconds)
        self.failure_hook = failure_hook
        self._stop = threading.Event()
        #: Set by the heartbeat pump when the coordinator reclaimed our lease.
        self._abandoned = threading.Event()
        # Lifetime statistics, returned by :meth:`run`.
        self.cases_run = 0
        self.cases_failed = 0
        self.records_sent = 0
        self.leases_taken = 0

    def stop(self) -> None:
        """Ask the worker loop to exit after the current case."""
        self._stop.set()

    # -- transport with outage tolerance ------------------------------------
    def _call(self, call: Callable[[], Dict[str, object]]) -> Dict[str, object]:
        """Invoke one client call, riding out coordinator outages.

        Retries :class:`CoordinatorUnreachable` with capped exponential
        pauses until ``give_up_seconds`` of cumulative waiting is spent,
        then re-raises — a worker should survive a coordinator restart but
        not spin forever against a dead campaign.
        """
        waited = 0.0
        pause = 0.1
        while True:
            try:
                return call()
            except CoordinatorUnreachable:
                if waited >= self.give_up_seconds or self._stop.is_set():
                    raise
                self._stop.wait(pause)
                waited += pause
                pause = min(2.0, pause * 2.0)

    # -- heartbeat pump ------------------------------------------------------
    def _pump_heartbeats(self, lease_id: str, interval: float, done: threading.Event) -> None:
        while not done.wait(interval):
            try:
                answer = self.client.heartbeat(self.name, lease_id)
            except CoordinatorUnreachable:
                continue  # outage: the retry loop in _call covers real work
            if not answer.get("ok", False):
                self._abandoned.set()
                return

    # -- execution -----------------------------------------------------------
    def _run_case(self, runner: SweepRunner, case) -> Dict[str, object]:
        """Execute one prepared case and return its store payload."""
        if self.failure_hook is not None:
            try:
                self.failure_hook(case.label)
            except Exception as exc:  # noqa: BLE001 - injected fault becomes the record
                record = SweepRecord(
                    label=case.label,
                    config_hash=case.config_digest,
                    seed=case.config.seed,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    error_kind=classify_error(exc),
                )
                return record.payload()
        record = runner.run([case])[0]
        return record.payload()

    def run(self) -> Dict[str, int]:
        """Work the campaign until it completes; returns lifetime counters.

        Raises :class:`CoordinatorUnreachable` if the coordinator stays down
        past ``give_up_seconds``, and ``RuntimeError`` on spec drift.
        """
        spec = self._call(self.client.spec)
        descriptor = spec.get("descriptor")
        if not isinstance(descriptor, dict):
            raise RuntimeError("coordinator /spec returned no descriptor")
        cases = campaign_cases(descriptor)
        timeout = spec.get("case_timeout_seconds")
        # Cases arrive already prepared (reseeded, traces off); running them
        # through a reseeding runner would derive different configs than the
        # coordinator hashed, so preparation is disabled here.
        runner = SweepRunner(
            workers=0,
            reseed=False,
            trace=None,
            case_timeout_seconds=float(timeout) if timeout is not None else None,
        )

        while not self._stop.is_set():
            answer = self._call(lambda: self.client.lease(self.name))
            status = answer.get("status")
            if status == "complete":
                break
            if status == "wait":
                self._stop.wait(float(answer.get("retry_after", 0.5)))
                continue
            if status != "lease":
                raise RuntimeError(f"unexpected /lease response: {answer!r}")

            lease_id = str(answer["lease_id"])
            deadline = float(answer.get("deadline_seconds", 30.0))
            shard = answer.get("cases", [])
            self.leases_taken += 1
            self._abandoned.clear()
            pump_done = threading.Event()
            pump = threading.Thread(
                target=self._pump_heartbeats,
                args=(lease_id, max(0.05, deadline / 3.0), pump_done),
                name=f"heartbeat-{lease_id}",
                daemon=True,
            )
            pump.start()
            try:
                for leased in shard:
                    if self._stop.is_set() or self._abandoned.is_set():
                        break
                    index = int(leased["index"])
                    if index < 0 or index >= len(cases):
                        raise RuntimeError(
                            f"spec drift: leased case index {index} is outside "
                            f"this host's {len(cases)}-case grid"
                        )
                    case = cases[index]
                    if (case.label, case.config_digest) != (
                        leased.get("label"),
                        leased.get("config_hash"),
                    ):
                        raise RuntimeError(
                            "spec drift: leased case "
                            f"({leased.get('label')!r}, {leased.get('config_hash')!r}) "
                            f"does not match local case ({case.label!r}, "
                            f"{case.config_digest!r}) at index {index}; "
                            "coordinator and worker disagree on the grid"
                        )
                    if self.throttle_seconds > 0:
                        self._stop.wait(self.throttle_seconds)
                        if self._stop.is_set() or self._abandoned.is_set():
                            break
                    payload = self._run_case(runner, case)
                    self.cases_run += 1
                    if not payload.get("ok", True):
                        self.cases_failed += 1
                    self._call(
                        lambda p=payload: self.client.results(self.name, lease_id, [p])
                    )
                    self.records_sent += 1
            finally:
                pump_done.set()
                pump.join()
                runner.close()
            if not self._abandoned.is_set():
                # Retire the lease explicitly; on outage the lease simply
                # expires, which is equivalent (just slower).
                try:
                    self._call(
                        lambda: self.client.results(self.name, lease_id, [], done=True)
                    )
                except CoordinatorUnreachable:
                    pass

        return {
            "cases_run": self.cases_run,
            "cases_failed": self.cases_failed,
            "records_sent": self.records_sent,
            "leases_taken": self.leases_taken,
        }
