"""Campaign overhead bench: coordinator + local workers vs a plain sweep.

Registered as the ``campaign`` suite of ``python -m repro.bench``.  The
suite runs a small, fixed figure2 grid twice — once through a real
coordinator/worker campaign over localhost HTTP, once through a plain
serial :class:`~repro.sweep.runner.SweepRunner` — and reports the campaign
run's throughput as the measurement, with the protocol overhead (campaign
wall vs serial wall) stamped into the result's environment.  It also
asserts the tentpole guarantee on every run: the campaign store's canonical
bytes must equal the serial store's (see ``docs/campaigns.md``).
"""

from __future__ import annotations

import platform
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.campaign.coordinator import Campaign, CoordinatorServer
from repro.campaign.protocol import campaign_cases, resolve_spec, spec_descriptor
from repro.campaign.worker import CampaignWorker
from repro.sweep.runner import SweepRunner
from repro.sweep.store import ResultStore

__all__ = ["campaign_suite_cases", "run_campaign_suite"]

#: The grid the suite measures: small enough for CI, big enough to shard.
_DESCRIPTOR_KNOBS = {"figure": "figure2", "steps": 2, "sim_ranks": 2}

#: Local worker loops driven against the coordinator.
_WORKER_COUNT = 2


def _descriptor():
    knobs = dict(_DESCRIPTOR_KNOBS)
    figure = knobs.pop("figure")
    return spec_descriptor(figure, **knobs)


def campaign_suite_cases() -> List[Tuple[str, object]]:
    """The ``(label, config)`` list the campaign suite runs (prepared grid)."""
    return [(case.label, case.config) for case in campaign_cases(_descriptor())]


def run_campaign_suite(workers: int = 0, repeats: Optional[int] = None):
    """Measure the campaign path; returns a ``BenchResult`` for the harness.

    ``workers`` > 0 overrides the number of local campaign workers;
    ``repeats`` is accepted for harness symmetry but ignored (the comparison
    needs exactly one campaign run against one serial run).
    """
    from repro.bench.harness import BenchResult

    del repeats  # one campaign vs one serial run is the measurement
    descriptor = _descriptor()
    worker_count = workers if workers > 0 else _WORKER_COUNT

    with tempfile.TemporaryDirectory(prefix="campaign-bench-") as tmp:
        campaign_store = ResultStore(Path(tmp) / "campaign.jsonl")
        serial_store = ResultStore(Path(tmp) / "serial.jsonl")

        campaign = Campaign(
            descriptor, campaign_store, shard_size=2, lease_seconds=10.0
        )
        start = time.perf_counter()
        with CoordinatorServer(campaign) as server:
            crew = [
                threading.Thread(
                    target=CampaignWorker(server.url, name=f"bench-{i}").run,
                    name=f"campaign-bench-worker-{i}",
                    daemon=True,
                )
                for i in range(worker_count)
            ]
            for thread in crew:
                thread.start()
            for thread in crew:
                thread.join()
        campaign_wall = time.perf_counter() - start

        # The single-host baseline: the raw spec through a default (reseeding,
        # traces-off) runner — running the already-prepared campaign cases
        # here would derive the seeds twice and change every config hash.
        start = time.perf_counter()
        serial = SweepRunner(workers=0, store=serial_store, trace=False)
        serial.run(resolve_spec(descriptor))
        serial_wall = time.perf_counter() - start

        identical = campaign_store.canonical_bytes() == serial_store.canonical_bytes()
        if not identical:
            raise RuntimeError(
                "campaign bench: canonical bytes of the campaign store differ "
                "from the serial baseline — the merge guarantee is broken"
            )

        events = 0
        sim_seconds = 0.0
        failed = 0
        records = campaign_store.canonical_records()
        for record in records:
            if not record.get("ok", True):
                failed += 1
                continue
            stats = record.get("stats", {})
            if isinstance(stats, dict):
                events += int(float(stats.get("events_processed", 0.0)))
            if record.get("failed", False):
                failed += 1
            else:
                end_to_end = float(record.get("end_to_end_time", 0.0))
                if end_to_end == end_to_end:  # not NaN
                    sim_seconds += end_to_end

    overhead_pct = (
        (campaign_wall / serial_wall - 1.0) * 100.0 if serial_wall > 0 else 0.0
    )
    return BenchResult(
        suite="campaign",
        wall_seconds=campaign_wall,
        events_processed=events,
        events_per_sec=events / campaign_wall if campaign_wall > 0 else 0.0,
        scenarios=len(records),
        failed_scenarios=failed,
        sim_seconds=sim_seconds,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S"),
        environment={
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
            "workers": str(worker_count),
            "serial_wall_seconds": f"{serial_wall:.3f}",
            "overhead_pct": f"{overhead_pct:.1f}",
            "byte_identical": str(identical).lower(),
        },
    )
