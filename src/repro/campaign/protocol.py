"""Wire protocol shared by the campaign coordinator and its workers.

Everything on the wire is JSON over HTTP (stdlib only: ``http.server`` on
the coordinator, ``urllib.request`` here).  Configurations never travel:
a campaign is identified by a small **spec descriptor** — the figure name
plus the CLI downsizing knobs — and both sides expand it independently
through :func:`repro.sweep.cli.build_spec` and prepare it with
:func:`repro.sweep.runner.prepare_cases`.  The deterministic grids make
both expansions identical, which the worker verifies case by case against
the ``(label, config_hash)`` identities the coordinator leases out; a
mismatch (version skew between hosts) aborts loudly instead of corrupting
the store.

Endpoints (all responses are JSON bodies with HTTP 200):

===========  ======  ====================================================
``/spec``    GET     descriptor + execution knobs for joining workers
``/status``  GET     board snapshot, store path, worker census
``/lease``   POST    ``{worker}`` -> a shard lease, ``wait`` or ``complete``
``/heartbeat``  POST ``{worker, lease_id}`` -> ``{ok}`` (``false`` = abandon)
``/results`` POST    ``{worker, lease_id, records, done}`` -> merge ack
===========  ======  ====================================================
"""

from __future__ import annotations

import argparse
import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional

__all__ = [
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "DESCRIPTOR_KNOBS",
    "PROTOCOL_VERSION",
    "campaign_cases",
    "resolve_spec",
    "spec_descriptor",
]

#: Bumped on incompatible wire or sharding changes; both sides check it.
PROTOCOL_VERSION = 1

#: Descriptor knobs and their defaults — mirrors the ``repro.sweep`` CLI
#: parser so a descriptor names the same grid a local sweep would run.
DESCRIPTOR_KNOBS: Dict[str, object] = {
    "steps": 4,
    "steps_cap": 64,
    "sim_ranks": 4,
    "data_mib": 32,
    "cores": "",
}


def spec_descriptor(figure: str, **knobs: object) -> Dict[str, object]:
    """A self-contained, JSON-safe description of one figure sweep.

    ``figure`` must be one of :data:`repro.sweep.cli.FIGURES`; ``knobs``
    may override any :data:`DESCRIPTOR_KNOBS` entry (unknown knobs are
    rejected so typos cannot silently shard a different grid).
    """
    from repro.sweep.cli import FIGURES

    if figure not in FIGURES:
        raise ValueError(f"unknown figure {figure!r}; known: {list(FIGURES)}")
    unknown = sorted(set(knobs) - set(DESCRIPTOR_KNOBS))
    if unknown:
        raise ValueError(f"unknown descriptor knob(s) {unknown}; known: {sorted(DESCRIPTOR_KNOBS)}")
    descriptor: Dict[str, object] = {"version": PROTOCOL_VERSION, "figure": figure}
    descriptor.update(DESCRIPTOR_KNOBS)
    descriptor.update(knobs)
    return descriptor


def resolve_spec(descriptor: Dict[str, object]):
    """Expand a descriptor into the :class:`~repro.sweep.spec.SweepSpec` it names."""
    from repro.sweep.cli import build_spec

    version = descriptor.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ValueError(
            f"campaign protocol version mismatch: descriptor has {version}, "
            f"this host speaks {PROTOCOL_VERSION}"
        )
    namespace = argparse.Namespace(figure=descriptor["figure"])
    for knob, default in DESCRIPTOR_KNOBS.items():
        setattr(namespace, knob, descriptor.get(knob, default))
    return build_spec(namespace)


def campaign_cases(descriptor: Dict[str, object]):
    """The prepared, shard-addressable case list both sides agree on.

    Preparation matches a plain ``python -m repro.sweep`` run (label-derived
    reseeding, traces off), so the records a campaign merges are the records
    a single-host sweep of the same descriptor would write.
    """
    from repro.sweep.runner import prepare_cases

    return prepare_cases(resolve_spec(descriptor), reseed=True, trace=False)


class CoordinatorUnreachable(RuntimeError):
    """The coordinator did not answer (down, restarting, or unreachable)."""


def request_json(
    url: str, payload: Optional[Dict[str, object]] = None, timeout: float = 10.0
) -> Dict[str, object]:
    """One JSON round trip: GET (``payload=None``) or POST ``payload``.

    Transport-level failures raise :class:`CoordinatorUnreachable` (callers
    retry those — the coordinator may simply be restarting); an HTTP error
    status or a non-object body raises ``RuntimeError`` (a protocol bug, not
    worth retrying).
    """
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        raise RuntimeError(f"{url}: HTTP {exc.code} {exc.reason}") from exc
    except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
        raise CoordinatorUnreachable(f"{url}: {exc}") from exc
    decoded = json.loads(body.decode("utf-8"))
    if not isinstance(decoded, dict):
        raise RuntimeError(f"{url}: expected a JSON object, got {type(decoded).__name__}")
    return decoded


class CoordinatorClient:
    """Typed JSON client for the coordinator's endpoints."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CoordinatorClient {self.base_url!r}>"

    def spec(self) -> Dict[str, object]:
        """The campaign's descriptor and execution knobs."""
        return request_json(f"{self.base_url}/spec", timeout=self.timeout)

    def status(self) -> Dict[str, object]:
        """The coordinator's live status snapshot."""
        return request_json(f"{self.base_url}/status", timeout=self.timeout)

    def lease(self, worker: str) -> Dict[str, object]:
        """Request the next shard lease for ``worker``."""
        return request_json(
            f"{self.base_url}/lease", {"worker": worker}, timeout=self.timeout
        )

    def heartbeat(self, worker: str, lease_id: str) -> Dict[str, object]:
        """Keep a lease alive; ``{"ok": false}`` means it was reclaimed."""
        return request_json(
            f"{self.base_url}/heartbeat",
            {"worker": worker, "lease_id": lease_id},
            timeout=self.timeout,
        )

    def results(
        self,
        worker: str,
        lease_id: str,
        records: List[Dict[str, object]],
        done: bool = False,
    ) -> Dict[str, object]:
        """Stream a batch of record payloads back; ``done`` retires the lease."""
        return request_json(
            f"{self.base_url}/results",
            {"worker": worker, "lease_id": lease_id, "records": records, "done": done},
            timeout=self.timeout,
        )
