"""Velocity-moment (turbulence) statistics and standard variance.

The CFD workflow's analysis computes the n-th moment of the velocity
distribution, ``E[u(x, t)^n]``; when all moments are available the probability
density function of the velocity fluctuation can be reconstructed (paper
Section 6.3.1).  The synthetic workflows' analysis reduces every block to its
standard variance.  Both are provided in batch form and in a streaming form
(:class:`StreamingMoments`) that consumes fine-grain blocks incrementally —
the shape an in-situ analysis actually takes when fed by Zipper.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

__all__ = ["nth_moment", "standard_variance", "velocity_moments", "StreamingMoments"]


def nth_moment(values: np.ndarray, n: int, central: bool = False) -> float:
    """The n-th (optionally central) moment ``E[u^n]`` of ``values``."""
    if n < 0:
        raise ValueError("the moment order must be non-negative")
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ValueError("cannot compute a moment of an empty array")
    if central:
        arr = arr - arr.mean()
    return float(np.mean(arr**n))


def standard_variance(values: np.ndarray) -> float:
    """Population variance of ``values`` (the synthetic workloads' reduction)."""
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ValueError("cannot compute the variance of an empty array")
    return float(np.var(arr))


def velocity_moments(velocity: np.ndarray, max_order: int = 4) -> Dict[int, float]:
    """Moments 1..max_order of a velocity field (the paper uses n = 4)."""
    if max_order < 1:
        raise ValueError("max_order must be at least 1")
    return {n: nth_moment(velocity, n) for n in range(1, max_order + 1)}


class StreamingMoments:
    """Incremental raw moments over a stream of data blocks.

    Accumulates ``sum(u^k)`` for ``k = 1..max_order`` and the element count, so
    the exact moments of the full data set are available at any time without
    holding more than one block in memory.  The merge operation makes the
    reduction associative, which is what allows every analysis rank to work
    independently and combine results at the end.
    """

    def __init__(self, max_order: int = 4):
        if max_order < 1:
            raise ValueError("max_order must be at least 1")
        self.max_order = max_order
        self.count = 0
        self._sums = np.zeros(max_order, dtype=float)
        self.blocks_consumed = 0

    def update(self, values: np.ndarray) -> "StreamingMoments":
        """Fold one block of data into the accumulator."""
        arr = np.asarray(values, dtype=float).reshape(-1)
        if arr.size == 0:
            return self
        powers = arr.copy()
        for k in range(self.max_order):
            self._sums[k] += powers.sum()
            if k + 1 < self.max_order:
                powers *= arr
        self.count += arr.size
        self.blocks_consumed += 1
        return self

    def moment(self, n: int) -> float:
        """The current estimate of ``E[u^n]``."""
        if not 1 <= n <= self.max_order:
            raise ValueError(f"n must lie in [1, {self.max_order}]")
        if self.count == 0:
            raise ValueError("no data has been consumed yet")
        return float(self._sums[n - 1] / self.count)

    def moments(self) -> Dict[int, float]:
        return {n: self.moment(n) for n in range(1, self.max_order + 1)}

    @property
    def mean(self) -> float:
        return self.moment(1)

    @property
    def variance(self) -> float:
        """Population variance derived from the first two raw moments."""
        if self.max_order < 2:
            raise ValueError("variance needs max_order >= 2")
        return self.moment(2) - self.moment(1) ** 2

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two independent accumulators (associative reduction)."""
        if other.max_order != self.max_order:
            raise ValueError("cannot merge accumulators of different order")
        merged = StreamingMoments(self.max_order)
        merged.count = self.count + other.count
        merged._sums = self._sums + other._sums
        merged.blocks_consumed = self.blocks_consumed + other.blocks_consumed
        return merged

    @staticmethod
    def merge_all(parts: Iterable["StreamingMoments"]) -> "StreamingMoments":
        parts = list(parts)
        if not parts:
            raise ValueError("merge_all needs at least one accumulator")
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        return merged
