"""Analysis kernels coupled with the proxy simulations (paper Table 3).

* n-th moment of the velocity distribution (turbulence statistics) for the CFD
  workflow;
* standard-variance computation for the synthetic workflows;
* mean-squared displacement (MSD) for the LAMMPS workflow;
* streaming (incremental) variants used by the in-situ examples, which receive
  the data one fine-grain block at a time.
"""

from repro.apps.analysis.moments import (
    nth_moment,
    standard_variance,
    velocity_moments,
    StreamingMoments,
)
from repro.apps.analysis.msd import MeanSquaredDisplacement, mean_squared_displacement

__all__ = [
    "nth_moment",
    "standard_variance",
    "velocity_moments",
    "StreamingMoments",
    "MeanSquaredDisplacement",
    "mean_squared_displacement",
]
