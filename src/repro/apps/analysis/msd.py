"""Mean-squared displacement (MSD) analysis for the molecular-dynamics workflow.

MSD measures the average squared deviation of particle positions from a
reference configuration over time — the paper couples it with the LAMMPS
Lennard-Jones melt to characterise how far atoms wander as the solid melts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["mean_squared_displacement", "MeanSquaredDisplacement"]


def mean_squared_displacement(
    positions: np.ndarray,
    reference: np.ndarray,
    box_length: Optional[float] = None,
) -> float:
    """MSD of ``positions`` relative to ``reference``.

    With ``box_length`` given, displacements are wrapped by the minimum-image
    convention (positions supplied wrapped into the periodic box); without it,
    positions are taken as unwrapped coordinates.
    """
    pos = np.asarray(positions, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if pos.shape != ref.shape:
        raise ValueError("positions and reference must have the same shape")
    if pos.ndim != 2 or pos.shape[1] not in (2, 3):
        raise ValueError("positions must be (N, 2) or (N, 3)")
    disp = pos - ref
    if box_length is not None:
        if box_length <= 0:
            raise ValueError("box_length must be positive")
        disp -= box_length * np.round(disp / box_length)
    return float(np.mean(np.sum(disp * disp, axis=1)))


class MeanSquaredDisplacement:
    """Streaming MSD: consumes per-step position blocks and records the curve."""

    def __init__(self, reference: np.ndarray, box_length: Optional[float] = None):
        self.reference = np.array(reference, dtype=float)
        if self.reference.ndim != 2 or self.reference.shape[1] not in (2, 3):
            raise ValueError("reference must be (N, 2) or (N, 3)")
        self.box_length = box_length
        self._per_step: Dict[int, List[float]] = {}

    def update(self, step: int, positions: np.ndarray, offset: int = 0) -> float:
        """Fold in one block of particle positions for time ``step``.

        ``offset`` is the index of the first particle contained in the block,
        so blocks produced by different ranks (or split into fine-grain pieces)
        can be analysed independently.
        """
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2:
            raise ValueError("positions must be two-dimensional")
        ref = self.reference[offset : offset + pos.shape[0]]
        if ref.shape != pos.shape:
            raise ValueError("block does not align with the reference configuration")
        value = mean_squared_displacement(pos, ref, self.box_length)
        self._per_step.setdefault(step, []).append(value)
        return value

    def curve(self) -> Dict[int, float]:
        """MSD per time step (averaging over the blocks of that step)."""
        return {step: float(np.mean(vals)) for step, vals in sorted(self._per_step.items())}

    @property
    def steps_seen(self) -> int:
        return len(self._per_step)

    def is_monotonic(self, tolerance: float = 0.0) -> bool:
        """Whether the MSD curve is non-decreasing (true for a melting solid)."""
        curve = list(self.curve().values())
        return all(b >= a - tolerance for a, b in zip(curve, curve[1:]))
