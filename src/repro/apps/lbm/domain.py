"""Domain decomposition helpers for the LBM proxy application.

The paper's CFD workflow assigns every simulation process a subgrid of
64 x 64 x 256 cells of a global 16384 x 64 x 256 domain (a 1-D decomposition
along the first axis).  :class:`DomainDecomposition` reproduces that layout in
2-D: it partitions the ``x`` axis across ranks, computes each rank's subgrid
and neighbours, and provides the halo-exchange pairing the streaming phase
needs — which is exactly the ``MPI_Sendrecv`` traffic whose slowdown under
staging-library interference the paper traces in Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["Subdomain", "DomainDecomposition"]


@dataclass(frozen=True)
class Subdomain:
    """One rank's portion of the global lattice."""

    rank: int
    x_start: int
    x_end: int  #: exclusive
    ny: int

    @property
    def nx(self) -> int:
        return self.x_end - self.x_start

    @property
    def cells(self) -> int:
        return self.nx * self.ny

    def field_bytes(self, fields: int = 3, dtype_bytes: int = 8) -> int:
        """Bytes of output per step (density + 2 velocity components by default)."""
        return self.cells * fields * dtype_bytes

    def halo_bytes(self, populations: int = 9, dtype_bytes: int = 8) -> int:
        """Bytes exchanged with *each* x-neighbour per streaming phase."""
        return self.ny * populations * dtype_bytes


class DomainDecomposition:
    """1-D block decomposition of an ``nx_global`` x ``ny`` lattice over ``ranks``."""

    def __init__(self, nx_global: int, ny: int, ranks: int):
        if ranks <= 0:
            raise ValueError("ranks must be positive")
        if nx_global < ranks:
            raise ValueError("cannot give every rank at least one column")
        if ny <= 0:
            raise ValueError("ny must be positive")
        self.nx_global = nx_global
        self.ny = ny
        self.ranks = ranks

    def subdomain(self, rank: int) -> Subdomain:
        """The contiguous slab of ``x`` columns owned by ``rank``."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} out of range")
        base = self.nx_global // self.ranks
        extra = self.nx_global % self.ranks
        start = rank * base + min(rank, extra)
        size = base + (1 if rank < extra else 0)
        return Subdomain(rank, start, start + size, self.ny)

    def subdomains(self) -> List[Subdomain]:
        return [self.subdomain(r) for r in range(self.ranks)]

    def neighbors(self, rank: int) -> Tuple[int, int]:
        """Periodic left and right neighbours of ``rank`` along ``x``."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} out of range")
        return ((rank - 1) % self.ranks, (rank + 1) % self.ranks)

    def gather(self, pieces: List[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank fields back into the global field (for tests)."""
        if len(pieces) != self.ranks:
            raise ValueError("need exactly one piece per rank")
        for rank, piece in enumerate(pieces):
            expected = self.subdomain(rank)
            if piece.shape[0] != expected.nx:
                raise ValueError(
                    f"rank {rank} piece has {piece.shape[0]} columns, expected {expected.nx}"
                )
        return np.concatenate(pieces, axis=0)

    def total_output_bytes(self, fields: int = 3, dtype_bytes: int = 8) -> int:
        """Output volume of one full step across every rank."""
        return sum(s.field_bytes(fields, dtype_bytes) for s in self.subdomains())
