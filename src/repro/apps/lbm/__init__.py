"""Lattice-Boltzmann CFD proxy application.

The paper's CFD workload is a 3-D channel-flow simulation built on the
lattice Boltzmann method, with three kernels per time step — collision (CL),
streaming (ST), and a macroscopic update (UD) — and one velocity-field output
per step that feeds an n-th-moment turbulence analysis.

This package provides a genuine D2Q9 lattice-Boltzmann solver
(:class:`~repro.apps.lbm.d2q9.LatticeBoltzmannD2Q9`) exposing the same three
per-step phases, a domain-decomposition helper
(:class:`~repro.apps.lbm.domain.DomainDecomposition`), and a channel-flow
driver (:func:`~repro.apps.lbm.channel.channel_flow`) used by the examples and
tests.  The per-step cost and output volume used in the cluster simulation are
calibrated in :mod:`repro.apps.costs`.
"""

from repro.apps.lbm.d2q9 import LatticeBoltzmannD2Q9, LBMState
from repro.apps.lbm.domain import DomainDecomposition, Subdomain
from repro.apps.lbm.channel import channel_flow, poiseuille_profile

__all__ = [
    "LatticeBoltzmannD2Q9",
    "LBMState",
    "DomainDecomposition",
    "Subdomain",
    "channel_flow",
    "poiseuille_profile",
]
