"""Channel-flow driver and analytic reference solution for the LBM proxy."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro.apps.lbm.d2q9 import LatticeBoltzmannD2Q9, LBMState

__all__ = ["channel_flow", "poiseuille_profile"]


def poiseuille_profile(ny: int, body_force: float, viscosity: float) -> np.ndarray:
    """Analytic steady-state x-velocity profile of a body-force-driven channel.

    With solid walls occupying the ``y = 0`` and ``y = ny - 1`` lattice rows,
    the fluid spans a width ``H = ny - 2`` and the steady solution of the
    Navier-Stokes equations is the parabola
    ``u(y) = g / (2 nu) * y_f * (H - y_f)`` where ``y_f`` is the distance from
    the lower wall (measured at cell centres, walls at half-cell offsets).
    """
    if ny < 4:
        raise ValueError("ny must be at least 4")
    if viscosity <= 0:
        raise ValueError("viscosity must be positive")
    h = float(ny - 2)
    y = np.arange(ny, dtype=float) - 0.5  # distance of cell centres from the wall face
    profile = body_force / (2.0 * viscosity) * y * (h - y)
    profile[0] = 0.0
    profile[-1] = 0.0
    return np.clip(profile, 0.0, None)


def channel_flow(
    nx: int = 64,
    ny: int = 32,
    steps: int = 200,
    tau: float = 0.8,
    body_force: float = 1.0e-5,
    output_every: int = 1,
    on_step: Optional[Callable[[LBMState], None]] = None,
) -> Iterator[LBMState]:
    """Run a 2-D channel flow, yielding the macroscopic state every ``output_every`` steps.

    This is the producer side of the CFD examples: each yielded state is what
    the simulation would hand to Zipper (or to a baseline transport) as one
    step's output.
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    if output_every <= 0:
        raise ValueError("output_every must be positive")
    solver = LatticeBoltzmannD2Q9(nx=nx, ny=ny, tau=tau, body_force=body_force)
    for step in range(steps):
        state = solver.step()
        if on_step is not None:
            on_step(state)
        if (step + 1) % output_every == 0:
            yield state
