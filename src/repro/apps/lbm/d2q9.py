"""A D2Q9 lattice-Boltzmann solver with the paper's three per-step kernels.

The LBM treats the fluid as particle distribution functions ``f_i(x, t)`` on a
regular lattice with nine discrete velocities.  Each time step performs:

* **collision** (CL) — BGK relaxation of every ``f_i`` towards the local
  equilibrium distribution;
* **streaming** (ST) — each post-collision population moves one lattice cell
  along its velocity direction (with halo exchange when the domain is
  decomposed across ranks);
* **update** (UD) — macroscopic density and velocity are recomputed from the
  streamed populations (this is the field the coupled turbulence analysis
  consumes).

The implementation is fully vectorised NumPy, periodic or bounce-back in ``y``
(channel walls), periodic in ``x``, and driven by a constant body force
(pressure gradient) — a standard setup whose steady state has a known
analytic Poiseuille profile, which the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["LatticeBoltzmannD2Q9", "LBMState"]

# D2Q9 velocity set, weights and opposite directions (bounce-back pairs).
_VELOCITIES = np.array(
    [
        [0, 0],
        [1, 0],
        [0, 1],
        [-1, 0],
        [0, -1],
        [1, 1],
        [-1, 1],
        [-1, -1],
        [1, -1],
    ],
    dtype=np.int64,
)
_WEIGHTS = np.array(
    [4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 36, 1 / 36, 1 / 36, 1 / 36]
)
_OPPOSITE = np.array([0, 3, 4, 1, 2, 7, 8, 5, 6])


@dataclass
class LBMState:
    """Macroscopic fields after one update phase."""

    density: np.ndarray
    velocity_x: np.ndarray
    velocity_y: np.ndarray
    step: int

    @property
    def speed(self) -> np.ndarray:
        return np.sqrt(self.velocity_x**2 + self.velocity_y**2)

    def field_bytes(self) -> int:
        """Bytes of the output fields (what one step ships to the analysis)."""
        return int(
            self.density.nbytes + self.velocity_x.nbytes + self.velocity_y.nbytes
        )


class LatticeBoltzmannD2Q9:
    """BGK lattice-Boltzmann solver on an ``nx`` x ``ny`` periodic channel."""

    def __init__(
        self,
        nx: int,
        ny: int,
        tau: float = 0.8,
        body_force: float = 1.0e-5,
        bounce_back_walls: bool = True,
        seed: Optional[int] = None,
    ):
        if nx < 4 or ny < 4:
            raise ValueError("the lattice must be at least 4x4")
        if tau <= 0.5:
            raise ValueError("tau must exceed 0.5 for stability")
        if body_force < 0:
            raise ValueError("body_force must be non-negative")
        self.nx = nx
        self.ny = ny
        self.tau = tau
        self.omega = 1.0 / tau
        self.body_force = body_force
        self.bounce_back_walls = bounce_back_walls
        self.step_count = 0

        rho = np.ones((nx, ny))
        if seed is not None:
            rho += 1e-4 * np.random.default_rng(seed).standard_normal((nx, ny))
        ux = np.zeros((nx, ny))
        uy = np.zeros((nx, ny))
        self.f = self.equilibrium(rho, ux, uy)
        self._rho = rho
        self._ux = ux
        self._uy = uy

    # -- physics ----------------------------------------------------------
    @staticmethod
    def equilibrium(rho: np.ndarray, ux: np.ndarray, uy: np.ndarray) -> np.ndarray:
        """The Maxwell-Boltzmann equilibrium truncated to second order."""
        feq = np.empty((9,) + rho.shape)
        usq = 1.5 * (ux * ux + uy * uy)
        for i in range(9):
            cx, cy = _VELOCITIES[i]
            cu = 3.0 * (cx * ux + cy * uy)
            feq[i] = _WEIGHTS[i] * rho * (1.0 + cu + 0.5 * cu * cu - usq)
        return feq

    @property
    def viscosity(self) -> float:
        """Kinematic viscosity implied by the relaxation time."""
        return (self.tau - 0.5) / 3.0

    # -- the three per-step kernels -----------------------------------------
    def collision(self) -> None:
        """CL: relax every population towards local equilibrium, apply forcing."""
        feq = self.equilibrium(self._rho, self._ux, self._uy)
        self.f += self.omega * (feq - self.f)
        if self.body_force != 0.0:
            # Guo-style forcing reduced to its leading term for a constant
            # body force along +x.
            for i in range(9):
                cx = _VELOCITIES[i, 0]
                self.f[i] += 3.0 * _WEIGHTS[i] * cx * self.body_force

    def streaming(self) -> None:
        """ST: move each population one cell along its lattice velocity."""
        for i in range(9):
            cx, cy = _VELOCITIES[i]
            self.f[i] = np.roll(np.roll(self.f[i], cx, axis=0), cy, axis=1)
        if self.bounce_back_walls:
            self._apply_bounce_back()

    def _apply_bounce_back(self) -> None:
        """No-slip walls: the y = 0 and y = ny-1 rows are solid bounce-back nodes.

        Full-way bounce-back: every population that streamed into a wall node
        is reversed, so the wall rows carry zero momentum and the fluid rows
        in between develop the channel (Poiseuille) profile.
        """
        bottom = self.f[:, :, 0].copy()
        top = self.f[:, :, -1].copy()
        for i in range(9):
            self.f[_OPPOSITE[i], :, 0] = bottom[i]
            self.f[_OPPOSITE[i], :, -1] = top[i]

    def update(self) -> LBMState:
        """UD: recompute macroscopic density and velocity from the populations."""
        rho = self.f.sum(axis=0)
        ux = np.tensordot(_VELOCITIES[:, 0], self.f, axes=(0, 0)) / rho
        uy = np.tensordot(_VELOCITIES[:, 1], self.f, axes=(0, 0)) / rho
        self._rho, self._ux, self._uy = rho, ux, uy
        return LBMState(rho.copy(), ux.copy(), uy.copy(), self.step_count)

    def step(self) -> LBMState:
        """One full time step: collision, streaming, update."""
        self.collision()
        self.streaming()
        state = self.update()
        self.step_count += 1
        return state

    def run(self, steps: int) -> LBMState:
        """Advance ``steps`` time steps and return the final state."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        state = None
        for _ in range(steps):
            state = self.step()
        assert state is not None
        return state

    # -- diagnostics ----------------------------------------------------------
    def total_mass(self) -> float:
        """Total fluid mass (conserved by collision + streaming up to forcing)."""
        return float(self.f.sum())

    def mean_velocity(self) -> Tuple[float, float]:
        return float(self._ux.mean()), float(self._uy.mean())
