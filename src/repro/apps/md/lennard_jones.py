"""A cell-list Lennard-Jones molecular-dynamics mini-app (reduced units)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["fcc_lattice", "MDState", "LennardJonesMD"]


def fcc_lattice(cells_per_side: int, density: float = 0.8442) -> Tuple[np.ndarray, float]:
    """Positions of an FCC lattice with ``4 * cells_per_side**3`` atoms.

    Returns ``(positions, box_length)`` with positions inside ``[0, L)^3``;
    the default density is the classic LAMMPS "melt" benchmark value.
    """
    if cells_per_side <= 0:
        raise ValueError("cells_per_side must be positive")
    if density <= 0:
        raise ValueError("density must be positive")
    n_atoms = 4 * cells_per_side**3
    box_length = (n_atoms / density) ** (1.0 / 3.0)
    a = box_length / cells_per_side
    base = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    positions = np.empty((n_atoms, 3))
    idx = 0
    for i in range(cells_per_side):
        for j in range(cells_per_side):
            for k in range(cells_per_side):
                origin = np.array([i, j, k], dtype=float)
                positions[idx : idx + 4] = (base + origin) * a
                idx += 4
    return positions, box_length


@dataclass
class MDState:
    """Snapshot of the system after one step (what the workflow ships out)."""

    step: int
    positions: np.ndarray
    velocities: np.ndarray
    potential_energy: float
    kinetic_energy: float

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy

    @property
    def temperature(self) -> float:
        """Instantaneous temperature in reduced units (3N/2 kT = KE)."""
        n = self.positions.shape[0]
        return 2.0 * self.kinetic_energy / (3.0 * n)

    def output_bytes(self) -> int:
        """Bytes of the per-step output (positions only, as the MSD analysis needs)."""
        return int(self.positions.nbytes)


class LennardJonesMD:
    """Velocity-Verlet dynamics of truncated LJ atoms in a cubic periodic box."""

    def __init__(
        self,
        cells_per_side: int = 3,
        density: float = 0.8442,
        temperature: float = 1.44,
        dt: float = 0.005,
        cutoff: float = 2.5,
        seed: int = 0,
    ):
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.positions, self.box_length = fcc_lattice(cells_per_side, density)
        self.n_atoms = self.positions.shape[0]
        self.dt = dt
        self.cutoff = min(cutoff, self.box_length / 2.0 - 1e-9)
        self.step_count = 0
        self.initial_positions = self.positions.copy()

        rng = np.random.default_rng(seed)
        vel = rng.standard_normal((self.n_atoms, 3))
        vel -= vel.mean(axis=0)  # zero total momentum
        if temperature > 0:
            current = (vel**2).sum() / (3.0 * self.n_atoms)
            vel *= np.sqrt(temperature / current)
        else:
            vel[:] = 0.0
        self.velocities = vel
        self.forces, self._potential = self._compute_forces()

    # -- force evaluation with a cell list ---------------------------------
    def _cell_list(self) -> Tuple[Dict[Tuple[int, int, int], np.ndarray], int]:
        ncell = max(1, int(self.box_length / self.cutoff))
        cell_size = self.box_length / ncell
        coords = np.floor(self.positions / cell_size).astype(int) % ncell
        cells: Dict[Tuple[int, int, int], list] = {}
        for idx, (cx, cy, cz) in enumerate(coords):
            cells.setdefault((cx, cy, cz), []).append(idx)
        return {k: np.array(v, dtype=int) for k, v in cells.items()}, ncell

    def _compute_forces(self) -> Tuple[np.ndarray, float]:
        forces = np.zeros_like(self.positions)
        potential = 0.0
        cutoff_sq = self.cutoff * self.cutoff
        # Energy shift so the potential is continuous at the cutoff.
        inv_c6 = 1.0 / cutoff_sq**3
        shift = 4.0 * (inv_c6 * inv_c6 - inv_c6)
        cells, ncell = self._cell_list()

        if ncell < 3:
            # Too few cells for a correct 27-stencil: fall back to all pairs.
            pair_groups = [(np.arange(self.n_atoms), None)]
        else:
            pair_groups = None

        def accumulate(idx_i: np.ndarray, idx_j: Optional[np.ndarray]) -> None:
            nonlocal potential
            pi = self.positions[idx_i]
            pj = self.positions[idx_j] if idx_j is not None else pi
            delta = pi[:, None, :] - pj[None, :, :]
            delta -= self.box_length * np.round(delta / self.box_length)
            dist_sq = (delta**2).sum(axis=-1)
            if idx_j is None:
                # Same-group pairs: take each unordered pair once.
                iu = np.triu_indices(len(idx_i), k=1)
                mask = np.zeros_like(dist_sq, dtype=bool)
                mask[iu] = True
            else:
                mask = np.ones_like(dist_sq, dtype=bool)
            mask &= (dist_sq < cutoff_sq) & (dist_sq > 1e-12)
            if not mask.any():
                return
            ii, jj = np.nonzero(mask)
            r2 = dist_sq[ii, jj]
            inv_r2 = 1.0 / r2
            inv_r6 = inv_r2**3
            potential_pairs = 4.0 * (inv_r6 * inv_r6 - inv_r6) - shift
            potential += float(potential_pairs.sum())
            # dU/dr along the separation vector.
            fmag = (48.0 * inv_r6 * inv_r6 - 24.0 * inv_r6) * inv_r2
            fvec = fmag[:, None] * delta[ii, jj]
            np.add.at(forces, idx_i[ii], fvec)
            target_j = idx_i if idx_j is None else idx_j
            np.add.at(forces, target_j[jj], -fvec)

        if pair_groups is not None:
            accumulate(pair_groups[0][0], None)
            return forces, potential

        # Cell-list traversal: each cell against itself and half of its 26
        # neighbours (so each pair of cells is visited exactly once).
        half_stencil = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
            if (dx, dy, dz) > (0, 0, 0)
        ]
        for (cx, cy, cz), idx_i in cells.items():
            accumulate(idx_i, None)
            for dx, dy, dz in half_stencil:
                key = ((cx + dx) % ncell, (cy + dy) % ncell, (cz + dz) % ncell)
                idx_j = cells.get(key)
                if idx_j is not None:
                    accumulate(idx_i, idx_j)
        return forces, potential

    # -- time stepping ---------------------------------------------------------
    def step(self) -> MDState:
        """One velocity-Verlet step; returns the new state."""
        dt = self.dt
        self.velocities += 0.5 * dt * self.forces
        self.positions += dt * self.velocities
        self.positions %= self.box_length
        self.forces, self._potential = self._compute_forces()
        self.velocities += 0.5 * dt * self.forces
        self.step_count += 1
        kinetic = 0.5 * float((self.velocities**2).sum())
        return MDState(
            step=self.step_count,
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            potential_energy=self._potential,
            kinetic_energy=kinetic,
        )

    def run(self, steps: int) -> MDState:
        if steps <= 0:
            raise ValueError("steps must be positive")
        state = None
        for _ in range(steps):
            state = self.step()
        assert state is not None
        return state

    # -- diagnostics -------------------------------------------------------------
    def total_momentum(self) -> np.ndarray:
        return self.velocities.sum(axis=0)

    def total_energy(self) -> float:
        kinetic = 0.5 * float((self.velocities**2).sum())
        return kinetic + self._potential

    def msd_from_start(self) -> float:
        """Mean-squared displacement relative to the initial lattice."""
        delta = self.positions - self.initial_positions
        delta -= self.box_length * np.round(delta / self.box_length)
        return float(np.mean((delta**2).sum(axis=1)))
