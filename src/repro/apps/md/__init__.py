"""Lennard-Jones molecular-dynamics proxy application (the LAMMPS workload).

The paper's second real-world workflow runs a LAMMPS simulation of
Lennard-Jones atoms melting from a cold solid, coupled with a mean-squared
displacement analysis.  :class:`~repro.apps.md.lennard_jones.LennardJonesMD`
is a self-contained reimplementation of that workload in reduced LJ units:
an FCC lattice of atoms, a cell-list neighbour search, the truncated 12-6
potential and velocity-Verlet integration, with per-step position output that
feeds :class:`~repro.apps.analysis.msd.MeanSquaredDisplacement`.
"""

from repro.apps.md.lennard_jones import LennardJonesMD, MDState, fcc_lattice

__all__ = ["LennardJonesMD", "MDState", "fcc_lattice"]
