"""Synthetic producer applications with controlled time complexity.

The paper validates its performance model (Figures 12 and 13) and the
concurrent data-transfer optimisation (Figures 14 and 15) with three synthetic
simulations that emulate algorithms of complexity O(n), O(n log n) and
O(n^{3/2}), each coupled with a standard-variance analysis.  This module
provides both the *real* kernels (they genuinely burn the prescribed amount of
floating-point work per block and emit the block) and the calibration used by
the cost models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator

import numpy as np

__all__ = [
    "SYNTHETIC_COMPLEXITIES",
    "complexity_units",
    "SyntheticProducer",
    "synthetic_producer",
]

#: The three complexities evaluated in the paper.
SYNTHETIC_COMPLEXITIES = ("O(n)", "O(nlogn)", "O(n^1.5)")

#: Aliases accepted on input -> canonical name.
_ALIASES: Dict[str, str] = {
    "o(n)": "O(n)",
    "n": "O(n)",
    "linear": "O(n)",
    "o(nlogn)": "O(nlogn)",
    "nlogn": "O(nlogn)",
    "o(nlgn)": "O(nlogn)",
    "o(n^1.5)": "O(n^1.5)",
    "o(n3/2)": "O(n^1.5)",
    "n^1.5": "O(n^1.5)",
    "n3/2": "O(n^1.5)",
}


def canonical_complexity(name: str) -> str:
    """Normalise a complexity label to one of :data:`SYNTHETIC_COMPLEXITIES`."""
    key = name.strip().lower().replace(" ", "")
    if key in _ALIASES:
        return _ALIASES[key]
    if name in SYNTHETIC_COMPLEXITIES:
        return name
    raise ValueError(
        f"unknown complexity {name!r}; expected one of {SYNTHETIC_COMPLEXITIES}"
    )


def complexity_units(complexity: str, n: float) -> float:
    """Abstract work units of an input of size ``n`` under ``complexity``.

    The unit is chosen so that all three complexities agree at ``n = 1``:
    O(n) -> ``n``; O(n log n) -> ``n log2(n)``; O(n^{3/2}) -> ``n^{1.5}``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    complexity = canonical_complexity(complexity)
    if n == 0:
        return 0.0
    if complexity == "O(n)":
        return float(n)
    if complexity == "O(nlogn)":
        return float(n) * max(1.0, math.log2(n))
    return float(n) ** 1.5


@dataclass
class SyntheticProducer:
    """A producer that emulates a simulation of the requested complexity.

    Each call to :meth:`produce_block` generates ``elements`` random values and
    performs genuine floating-point work proportional to
    ``complexity_units(complexity, elements)`` (elementwise updates for O(n), a
    sort for O(n log n), and a blocked matrix product for O(n^{3/2})), then
    returns the data so it can be handed to a transport.
    """

    complexity: str
    elements: int = 131072  # 1 MiB of float64 per block by default
    seed: int = 0

    def __post_init__(self) -> None:
        self.complexity = canonical_complexity(self.complexity)
        if self.elements <= 0:
            raise ValueError("elements must be positive")
        self._rng = np.random.default_rng(self.seed)

    @property
    def block_bytes(self) -> int:
        return self.elements * 8

    def produce_block(self, step: int, block_index: int = 0) -> np.ndarray:
        """Generate one block's data, performing the complexity-matched work."""
        data = self._rng.standard_normal(self.elements)
        if self.complexity == "O(n)":
            # A couple of elementwise passes: the cheapest possible producer.
            data = 0.5 * (data + np.roll(data, 1))
            data += float(step)
        elif self.complexity == "O(nlogn)":
            # Divide-and-conquer style work: sorting dominates at n log n.
            order = np.argsort(data, kind="mergesort")
            data = data[order] + float(step)
        else:  # O(n^1.5)
            # A matrix-matrix product on a sqrt(n) x sqrt(n) tile costs n^1.5.
            m = max(2, int(math.isqrt(self.elements)))
            tile = data[: m * m].reshape(m, m)
            product = tile @ tile.T
            data = data.copy()
            data[: m * m] = product.reshape(-1) / m + float(step)
        return data

    def blocks(self, steps: int, blocks_per_step: int = 1) -> Iterator[tuple]:
        """Yield ``(step, block_index, data)`` for a whole run."""
        if steps <= 0 or blocks_per_step <= 0:
            raise ValueError("steps and blocks_per_step must be positive")
        for step in range(steps):
            for b in range(blocks_per_step):
                yield step, b, self.produce_block(step, b)


def synthetic_producer(
    complexity: str,
    elements: int = 131072,
    seed: int = 0,
) -> Callable[[int, int], np.ndarray]:
    """A convenience factory returning ``produce(step, block_index) -> ndarray``."""
    producer = SyntheticProducer(complexity, elements, seed)
    return producer.produce_block
