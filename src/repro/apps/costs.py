"""Workload cost models used by the cluster simulator.

A :class:`WorkloadModel` tells the simulated workflow how expensive one
simulation step is on a reference core, how much data it emits, what halo
traffic its internal communication generates, and how expensive the coupled
analysis is per byte.  The constants are calibrated against the wall-clock
numbers the paper reports:

* **CFD** (Table 1 / Figure 2): 256 simulation ranks run 100 steps in 39.2 s
  of simulation-only time (0.392 s/step) and emit 400 GB in total
  (≈ 16 MiB per rank per step); 128 analysis ranks spend 48.4 s on the
  4th-moment analysis.
* **LAMMPS** (Figures 18/19): ≈ 20 MB per rank per step, ≈ 1.65 s/step on a
  reference (Haswell) core — chosen so a Stampede2 core (relative speed 0.8)
  reproduces the ≈ 2 s/step visible in the Figure 19 trace.
* **Synthetic** (Figures 12–15): 2 GiB of data per simulation core, with
  per-block compute times calibrated so that the 1 MB-block runs take ≈ 2.1 s
  (O(n)), ≈ 22 s (O(n log n)) and ≈ 64 s (O(n^{3/2})) per core, and a
  standard-variance analysis of ≈ 24 s per 4 GiB analysis core.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.apps.synthetic import canonical_complexity

__all__ = [
    "WorkloadModel",
    "cfd_workload",
    "lammps_workload",
    "synthetic_workload",
    "MiB",
    "GiB",
]

MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass(frozen=True)
class WorkloadModel:
    """Per-rank cost description of one coupled simulation + analysis workload."""

    name: str
    #: Compute seconds of one simulation step on one reference core.
    sim_step_seconds: float
    #: Bytes of analysis input emitted per rank per step.
    output_bytes_per_step: int
    #: Number of simulation time steps.
    steps: int
    #: Seconds of analysis per byte of input on one reference core.
    analysis_seconds_per_byte: float
    #: Bytes exchanged with each neighbour during the internal communication
    #: phase of one step (the LBM streaming halo, MD ghost atoms); 0 disables
    #: the phase.
    halo_bytes: int = 0
    #: Number of neighbours each rank exchanges halos with per step.
    halo_neighbors: int = 2
    #: Split of the per-step compute time over the traced kernel phases.
    phase_fractions: Dict[str, float] = field(
        default_factory=lambda: {"collision": 0.45, "streaming": 0.35, "update": 0.20}
    )
    #: Exponent describing how the per-step compute time grows with block size
    #: relative to :attr:`reference_block_bytes` (1.0 = independent of block
    #: size; the super-linear synthetic producers use > 1).
    block_exponent: float = 1.0
    reference_block_bytes: int = 1 * MiB
    #: Size of one redistribution element (used by Decaf's element-count
    #: overflow model): 8-byte doubles for grid fields, whole atom records for
    #: the molecular-dynamics workload.
    element_bytes: int = 8
    #: Bursty analytics: multiplier on the per-byte analysis cost during a
    #: burst (1.0 = steady analysis; used by the elastic scenarios, where an
    #: in-situ renderer or checkpoint analysis periodically spikes).
    analysis_burst_factor: float = 1.0
    #: A burst starts every ``analysis_burst_period`` steps (0 disables bursts).
    analysis_burst_period: int = 0
    #: Number of consecutive steps one burst lasts.
    analysis_burst_length: int = 1

    def __post_init__(self) -> None:
        if self.sim_step_seconds < 0:
            raise ValueError("sim_step_seconds must be non-negative")
        if self.output_bytes_per_step <= 0:
            raise ValueError("output_bytes_per_step must be positive")
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.analysis_seconds_per_byte < 0:
            raise ValueError("analysis_seconds_per_byte must be non-negative")
        if self.halo_bytes < 0:
            raise ValueError("halo_bytes must be non-negative")
        if self.halo_neighbors < 0:
            raise ValueError("halo_neighbors must be non-negative")
        if abs(sum(self.phase_fractions.values()) - 1.0) > 1e-6:
            raise ValueError("phase_fractions must sum to 1")
        if self.block_exponent < 1.0:
            raise ValueError("block_exponent must be >= 1")
        if self.reference_block_bytes <= 0:
            raise ValueError("reference_block_bytes must be positive")
        if self.analysis_burst_factor <= 0:
            raise ValueError("analysis_burst_factor must be positive")
        if self.analysis_burst_period < 0:
            raise ValueError("analysis_burst_period must be non-negative")
        if self.analysis_burst_length <= 0:
            raise ValueError("analysis_burst_length must be positive")
        if (
            self.analysis_burst_period
            and self.analysis_burst_length >= self.analysis_burst_period
        ):
            raise ValueError(
                "analysis_burst_length must be smaller than "
                "analysis_burst_period (every burst needs preceding steady "
                "steps to be observable)"
            )

    # -- derived quantities ---------------------------------------------------
    def total_output_bytes(self, ranks: int) -> int:
        """Data volume moved from simulation to analysis by the whole run."""
        if ranks <= 0:
            raise ValueError("ranks must be positive")
        return self.output_bytes_per_step * self.steps * ranks

    def sim_step_seconds_for_block(self, block_bytes: int) -> float:
        """Per-step compute time when the output is produced in ``block_bytes`` blocks."""
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if self.block_exponent == 1.0:
            return self.sim_step_seconds
        ratio = block_bytes / self.reference_block_bytes
        return self.sim_step_seconds * ratio ** (self.block_exponent - 1.0)

    def sim_block_seconds(self, block_bytes: int) -> float:
        """Compute seconds attributable to one ``block_bytes`` block of output."""
        per_step = self.sim_step_seconds_for_block(block_bytes)
        blocks_per_step = max(1.0, self.output_bytes_per_step / block_bytes)
        return per_step / blocks_per_step

    def analysis_seconds_per_byte_at(self, step: int) -> float:
        """Per-byte analysis cost at time step ``step`` (bursty analytics).

        Steady workloads (``analysis_burst_period`` = 0) return the base
        cost unchanged — including the exact float value, so non-bursty runs
        are bit-identical to the pre-burst model.  With bursts enabled, the
        *last* ``analysis_burst_length`` steps of every
        ``analysis_burst_period``-step window cost
        ``analysis_burst_factor`` × the base rate (the first window starts
        steady, so every burst is preceded by observable steady steps).
        """
        if self.analysis_burst_period <= 0 or self.analysis_burst_factor == 1.0:
            return self.analysis_seconds_per_byte
        phase = step % self.analysis_burst_period
        if phase >= self.analysis_burst_period - self.analysis_burst_length:
            return self.analysis_seconds_per_byte * self.analysis_burst_factor
        return self.analysis_seconds_per_byte

    def analysis_step_seconds(self, bytes_per_analysis_rank_per_step: float) -> float:
        """Analysis time per step for a rank receiving that many bytes."""
        if bytes_per_analysis_rank_per_step < 0:
            raise ValueError("bytes must be non-negative")
        return self.analysis_seconds_per_byte * bytes_per_analysis_rank_per_step

    def analysis_block_seconds(self, block_bytes: int) -> float:
        """Analysis time for one block."""
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        return self.analysis_seconds_per_byte * block_bytes

    def simulation_only_seconds(self) -> float:
        """Wall-clock of the standalone simulation (the paper's lower bound)."""
        return self.sim_step_seconds * self.steps

    def replace(self, **changes) -> "WorkloadModel":
        return replace(self, **changes)


def cfd_workload(steps: int = 100) -> WorkloadModel:
    """The lattice-Boltzmann channel-flow workload of Table 1, per-rank view."""
    output = 16 * MiB
    # The n-th moment computation itself costs ≈ 0.30 s per analysis rank per
    # step (each analysis rank consumes the output of two simulation ranks);
    # the 48.4 s "analysis" bar of Figure 2 additionally contains the
    # standalone analysis application's input I/O, which belongs to the
    # transport, not to the kernel modelled here.
    analysis_per_byte = 0.30 / (2 * output)
    # Halo: one y-z face of a 64x64x256 subgrid, 19 populations of 8 bytes.
    halo = 64 * 256 * 19 * 8
    return WorkloadModel(
        name="cfd",
        sim_step_seconds=0.392,
        output_bytes_per_step=output,
        steps=steps,
        analysis_seconds_per_byte=analysis_per_byte,
        halo_bytes=halo,
        halo_neighbors=2,
        phase_fractions={"collision": 0.45, "streaming": 0.35, "update": 0.20},
    )


def lammps_workload(steps: int = 100) -> WorkloadModel:
    """The Lennard-Jones melt workload of Section 6.3.2, per-rank view."""
    output = 20 * 1000 * 1000  # "approximately 20MB of data in each time step"
    # The MSD analysis is cheap relative to the n-th moment analysis.
    analysis_per_byte = 0.20 / 100.0 / output * 100  # 0.2 s per step per 20 MB
    return WorkloadModel(
        name="lammps",
        sim_step_seconds=1.65,
        output_bytes_per_step=output,
        steps=steps,
        analysis_seconds_per_byte=analysis_per_byte,
        halo_bytes=1 * MiB,
        halo_neighbors=2,
        phase_fractions={"collision": 0.60, "streaming": 0.25, "update": 0.15},
        element_bytes=24,
    )


#: Per-block compute seconds for a 1 MiB block, per complexity (calibrated so a
#: 2 GiB-per-core run matches the paper's 2.1 s / 22.2 s / 64.0 s).
_SYNTHETIC_RATE_PER_MIB_BLOCK = {
    "O(n)": 2.1 / 2048.0,
    "O(nlogn)": 22.2 / 2048.0,
    "O(n^1.5)": 64.0 / 2048.0,
}

#: Block-size exponents reproducing the growth of the 8 MB-block simulation
#: times in Figure 12 (O(n) is flat; the super-linear producers grow).
_SYNTHETIC_BLOCK_EXPONENT = {
    "O(n)": 1.0,
    "O(nlogn)": 1.07,
    "O(n^1.5)": 1.21,
}

#: Standard-variance analysis cost: ≈ 23.6 s for the 4 GiB one analysis core
#: receives in the Figure 12 configuration (two simulation cores per analysis core).
_SYNTHETIC_ANALYSIS_PER_BYTE = 23.6 / (4 * GiB)


def synthetic_workload(
    complexity: str,
    block_bytes: int = 1 * MiB,
    data_per_rank: int = 2 * GiB,
    analysis_seconds_per_byte: Optional[float] = None,
) -> WorkloadModel:
    """A synthetic producer emitting ``data_per_rank`` bytes in ``block_bytes`` blocks.

    Each "step" of the returned model produces exactly one block, which is how
    the paper's synthetic applications feed the runtime (there is no outer
    time-step loop, just a stream of blocks).
    """
    complexity = canonical_complexity(complexity)
    if block_bytes <= 0:
        raise ValueError("block_bytes must be positive")
    if data_per_rank < block_bytes:
        raise ValueError("data_per_rank must be at least one block")
    blocks = int(data_per_rank // block_bytes)
    rate = _SYNTHETIC_RATE_PER_MIB_BLOCK[complexity]
    exponent = _SYNTHETIC_BLOCK_EXPONENT[complexity]
    per_block = rate * (block_bytes / MiB) ** exponent
    return WorkloadModel(
        name=f"synthetic[{complexity}]",
        sim_step_seconds=per_block,
        output_bytes_per_step=block_bytes,
        steps=blocks,
        analysis_seconds_per_byte=(
            _SYNTHETIC_ANALYSIS_PER_BYTE
            if analysis_seconds_per_byte is None
            else analysis_seconds_per_byte
        ),
        halo_bytes=0,
        halo_neighbors=0,
        phase_fractions={"collision": 1.0},
        block_exponent=exponent,
        reference_block_bytes=1 * MiB,
    )
