"""Proxy applications and analysis kernels used by the paper's evaluation.

Every workload in Table 3 of the paper is implemented twice:

* as a **real numerical kernel** (NumPy) that can be run directly and coupled
  through the threaded Zipper runtime — the lattice-Boltzmann CFD solver
  (:mod:`repro.apps.lbm`), the Lennard-Jones molecular-dynamics mini-app
  (:mod:`repro.apps.md`), the synthetic O(n) / O(n log n) / O(n^{3/2})
  producers (:mod:`repro.apps.synthetic`) and the analysis kernels
  (:mod:`repro.apps.analysis`);
* as a **cost model** (:mod:`repro.apps.costs`) that tells the cluster
  simulator how long one step takes, how much data it emits and how expensive
  the coupled analysis is, calibrated against the wall-clock numbers quoted in
  the paper.
"""

from repro.apps.synthetic import (
    SyntheticProducer,
    SYNTHETIC_COMPLEXITIES,
    synthetic_producer,
)
from repro.apps.costs import (
    WorkloadModel,
    cfd_workload,
    lammps_workload,
    synthetic_workload,
)
from repro.apps.analysis import (
    nth_moment,
    standard_variance,
    velocity_moments,
    MeanSquaredDisplacement,
    StreamingMoments,
)

__all__ = [
    "SyntheticProducer",
    "SYNTHETIC_COMPLEXITIES",
    "synthetic_producer",
    "WorkloadModel",
    "cfd_workload",
    "lammps_workload",
    "synthetic_workload",
    "nth_moment",
    "standard_variance",
    "velocity_moments",
    "MeanSquaredDisplacement",
    "StreamingMoments",
]
