"""Declarative parameter grids expanding into labelled workflow configurations.

The paper's evaluation is a grid of scenarios — transports × core counts ×
block sizes × preserve modes × machines — and every figure driver used to
hand-roll nested ``for`` loops over those axes.  :class:`ParamGrid` captures
one such grid declaratively: a base :class:`~repro.workflow.config.WorkflowConfig`,
an ordered set of axes, and a labelling rule.  :class:`SweepSpec` bundles one
or more grids (plus any hand-picked cases) under a name, and expands them into
the flat ``(label, config)`` list the runner and the legacy bench API consume.

Axis values are applied through the base config's ``replace``; axis names
that are not config fields (e.g. a synthetic-workload complexity) are
consumed by the grid's ``derive`` hook, which maps the full parameter
assignment to extra config overrides (typically the workload object).  The
special axis name ``machine`` accepts a preset name from
:mod:`repro.cluster.presets`.

The base config may be a two-application
:class:`~repro.workflow.config.WorkflowConfig` *or* a multi-stage
:class:`~repro.workflow.pipeline.PipelineSpec` — pipeline grids can sweep
over graph shapes by making ``stages``/``couplings`` overrides in a
``derive`` hook.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, fields
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cluster.presets import bridges, laptop, stampede2
from repro.cluster.spec import ClusterSpec
from repro.tenants.spec import TenantSpec
from repro.workflow.config import WorkflowConfig
from repro.workflow.pipeline import PipelineSpec

__all__ = ["MACHINES", "ParamGrid", "SweepCase", "SweepSpec", "config_hash", "resolve_machine"]

#: Machine presets addressable by name from an axis or a CLI flag.
MACHINES: Dict[str, Callable[[], ClusterSpec]] = {
    "bridges": bridges,
    "stampede2": stampede2,
    "laptop": laptop,
}

#: Anything a sweep case may carry as its configuration.
AnyConfig = Union[WorkflowConfig, PipelineSpec, TenantSpec]

#: Axes consumed by the expansion machinery rather than ``replace`` directly.
_VIRTUAL_AXES = frozenset({"machine"})


def resolve_machine(machine: Union[str, ClusterSpec]) -> ClusterSpec:
    """Turn a preset name (or an already-built spec) into a :class:`ClusterSpec`."""
    if isinstance(machine, ClusterSpec):
        return machine
    try:
        return MACHINES[machine]()
    except KeyError:
        raise ValueError(
            f"unknown machine preset {machine!r}; known: {sorted(MACHINES)}"
        ) from None


def config_hash(config: AnyConfig) -> str:
    """Stable, process-invariant digest of a workflow or pipeline configuration.

    Used (together with the case label) as the resume key of the result store:
    a completed ``(label, hash)`` pair is skipped when a sweep is re-run, and a
    changed parameter changes the hash so the scenario is re-executed.
    """
    payload = asdict(config)
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


class SweepCase:
    """One labelled scenario of a sweep."""

    __slots__ = ("label", "config", "_hash")

    def __init__(self, label: str, config: AnyConfig):
        self.label = str(label)
        self.config = config
        self._hash: Optional[str] = None

    @property
    def config_digest(self) -> str:
        """Cached :func:`config_hash` of the case's configuration."""
        if self._hash is None:
            self._hash = config_hash(self.config)
        return self._hash

    @property
    def key(self) -> Tuple[str, str]:
        """The resume key: ``(label, config hash)``."""
        return (self.label, self.config_digest)

    def __repr__(self) -> str:
        return f"<SweepCase {self.label!r}>"


#: A labelling rule: either a ``str.format`` template over the axis values or
#: a callable receiving the parameter assignment.
LabelRule = Union[str, Callable[[Dict[str, Any]], str]]


class ParamGrid:
    """The Cartesian product of parameter axes applied to a base config.

    Parameters
    ----------
    base:
        Configuration every case starts from (a :class:`WorkflowConfig` or a
        :class:`~repro.workflow.pipeline.PipelineSpec`).
    axes:
        Ordered mapping (or sequence of pairs) ``name -> values``.  Expansion
        follows the given order with the *leftmost axis slowest*, matching the
        nesting order of the hand-written loops it replaces.
    label:
        Labelling rule for the cases (template string or callable).
    derive:
        Optional hook mapping the parameter assignment to additional config
        overrides, for axes whose effect is not a plain config field (e.g.
        building a workload from a complexity class and a block size).  Every
        key it returns must be a config field (or ``machine``/``label``);
        non-field axis values reach the config *only* through the hook's
        return value, so a hook that ignores one of its axes produces cases
        that differ in label but not in config.
    """

    def __init__(
        self,
        base: AnyConfig,
        axes: Union[Dict[str, Sequence[Any]], Sequence[Tuple[str, Sequence[Any]]]],
        label: LabelRule,
        derive: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ):
        pairs = axes.items() if isinstance(axes, dict) else axes
        self.base = base
        self._config_fields = frozenset(f.name for f in fields(type(base)))
        self.axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = tuple(
            (str(name), tuple(values)) for name, values in pairs
        )
        for name, values in self.axes:
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            if name not in self._config_fields and name not in _VIRTUAL_AXES and derive is None:
                raise ValueError(
                    f"axis {name!r} is not a {type(base).__name__} field; supply "
                    "a derive hook that consumes it"
                )
        self.label = label
        self.derive = derive

    def __len__(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def _label_for(self, params: Dict[str, Any]) -> str:
        if callable(self.label):
            return str(self.label(params))
        return self.label.format(**params)

    def cases(self) -> Iterator[SweepCase]:
        """Expand the grid into labelled cases (leftmost axis slowest)."""
        names = [name for name, _ in self.axes]
        for combo in itertools.product(*(values for _, values in self.axes)):
            params = dict(zip(names, combo))
            overrides: Dict[str, Any] = dict(params)
            if self.derive is not None:
                derived = self.derive(params)
                unknown = [
                    k
                    for k in derived
                    if k not in self._config_fields
                    and k not in _VIRTUAL_AXES
                    and k != "label"
                ]
                if unknown:
                    raise ValueError(
                        f"derive returned keys that are not {type(self.base).__name__} "
                        f"fields: {sorted(unknown)}"
                    )
                overrides.update(derived)
            machine = overrides.pop("machine", None)
            if machine is not None:
                overrides["cluster"] = resolve_machine(machine)
            label = overrides.pop("label", None) or self._label_for(params)
            overrides = {k: v for k, v in overrides.items() if k in self._config_fields}
            overrides["label"] = label
            yield SweepCase(label, self.base.replace(**overrides))

    def __iter__(self) -> Iterator[SweepCase]:
        return self.cases()


class SweepSpec:
    """A named collection of grids and hand-picked cases forming one sweep."""

    def __init__(
        self,
        name: str,
        grids: Iterable[ParamGrid] = (),
        cases: Iterable[Union[SweepCase, Tuple[str, AnyConfig]]] = (),
    ):
        self.name = str(name)
        self.grids: List[ParamGrid] = list(grids)
        self.extra_cases: List[SweepCase] = [
            case if isinstance(case, SweepCase) else SweepCase(*case) for case in cases
        ]

    def add_grid(self, grid: ParamGrid) -> "SweepSpec":
        """Append a grid to the sweep (returns ``self`` for chaining)."""
        self.grids.append(grid)
        return self

    def add_case(self, label: str, config: AnyConfig) -> "SweepSpec":
        """Append one hand-picked case (returns ``self`` for chaining)."""
        self.extra_cases.append(SweepCase(label, config))
        return self

    def cases(self) -> List[SweepCase]:
        """Every case of the sweep, grids first (in order), then extras.

        Duplicate labels are rejected: the label is half of the resume key, so
        two distinct configurations sharing a label would shadow each other in
        the result store.
        """
        out: List[SweepCase] = []
        seen: Dict[str, str] = {}
        for grid in self.grids:
            out.extend(grid.cases())
        out.extend(self.extra_cases)
        for case in out:
            if case.label in seen:
                raise ValueError(f"duplicate case label {case.label!r} in sweep {self.name!r}")
            seen[case.label] = case.label
        return out

    def configs(self) -> List[Tuple[str, AnyConfig]]:
        """The legacy ``(label, config)`` list shape used by the bench layer."""
        return [(case.label, case.config) for case in self.cases()]

    def __len__(self) -> int:
        return sum(len(g) for g in self.grids) + len(self.extra_cases)

    def __repr__(self) -> str:
        return f"<SweepSpec {self.name!r} with {len(self)} cases>"
