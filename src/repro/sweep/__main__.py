"""Entry point for ``python -m repro.sweep`` (see :mod:`repro.sweep.cli`)."""

from repro.sweep.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
