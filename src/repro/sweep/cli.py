"""Command-line sweep driver: ``python -m repro.sweep``.

Runs a (possibly downsized) figure sweep through the parallel runner and
prints one summary row per scenario.  Used by CI as a smoke test of the
multiprocessing path and by hand for quick scaling studies, e.g.::

    PYTHONPATH=src python -m repro.sweep figure2 --steps 4 --sim-ranks 4 --workers 2
    PYTHONPATH=src python -m repro.sweep figure16 --steps 3 --cores 204,408 \
        --workers 4 --store results/figure16.jsonl

``python -m repro.sweep campaign ...`` dispatches to the distributed
campaign driver (coordinator + workers, see :mod:`repro.campaign.cli`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.sweep.runner import SweepRecord, SweepRunner
from repro.sweep.spec import SweepSpec

__all__ = ["main", "build_spec", "FIGURES"]

MiB = 1024 * 1024

#: Figure sweeps addressable from the command line ("pipelines" runs the
#: multi-stage chain/fan-out scenario families through the pipeline API;
#: "elastic" runs the bursty-analytics elastic-vs-static comparison,
#: "elastic-model" the threshold-vs-model-driven policy comparison,
#: "faults" the checkpoint-interval × static/elastic fault-recovery grid, and
#: "tenants" the multi-tenant policy × arrival-pattern contention grid).
FIGURES = (
    "figure2",
    "figure12",
    "figure13",
    "figure14",
    "figure16",
    "figure18",
    "pipelines",
    "elastic",
    "elastic-model",
    "faults",
    "tenants",
)


def build_spec(args: argparse.Namespace) -> SweepSpec:
    """Instantiate the requested figure spec with the CLI's downsizing knobs."""
    from repro.bench import experiments

    try:
        cores = tuple(int(c) for c in args.cores.split(",")) if args.cores else None
    except ValueError:
        raise SystemExit(
            f"error: --cores expects comma-separated integers, got {args.cores!r}"
        ) from None
    if args.figure == "figure2":
        return experiments.figure2_spec(
            steps=args.steps, representative_sim_ranks=args.sim_ranks
        )
    if args.figure == "pipelines":
        return experiments.pipeline_shapes_spec(
            steps=args.steps,
            core_counts=cores or (384, 768),
            representative_sim_ranks=args.sim_ranks,
        )
    if args.figure == "tenants":
        if cores and len(cores) > 1:
            raise SystemExit(
                "error: the tenants figure shares one facility capacity; pass a "
                f"single --cores value, got {args.cores!r}"
            )
        return experiments.tenant_contention_spec(
            steps=args.steps, capacity_cores=cores[0] if cores else 384
        )
    if args.figure in ("elastic", "elastic-model", "faults"):
        if cores and len(cores) > 1:
            raise SystemExit(
                "error: the elastic figures sweep static grants within one "
                f"total_cores value; pass a single --cores value, got {args.cores!r}"
            )
        factory = {
            "elastic": experiments.elastic_vs_static_spec,
            "elastic-model": experiments.model_vs_threshold_spec,
            "faults": experiments.fault_recovery_spec,
        }[args.figure]
        return factory(
            steps=args.steps,
            total_cores=cores[0] if cores else 384,
            representative_sim_ranks=args.sim_ranks,
        )
    if args.figure in ("figure12", "figure13"):
        factory = (
            experiments.figure12_spec
            if args.figure == "figure12"
            else experiments.figure13_spec
        )
        return factory(data_per_rank=args.data_mib * MiB, steps_cap=args.steps_cap)
    kwargs = {"core_counts": cores} if cores else {}
    if args.figure == "figure14":
        return experiments.figure14_spec(data_per_rank=args.data_mib * MiB, **kwargs)
    factory = (
        experiments.figure16_spec
        if args.figure == "figure16"
        else experiments.figure18_spec
    )
    return factory(steps=args.steps, **kwargs)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run one of the paper's figure sweeps through the parallel sweep engine.",
    )
    parser.add_argument("figure", choices=FIGURES, help="which figure's scenario grid to run")
    parser.add_argument("--workers", type=int, default=0, help="worker processes (0 = serial)")
    parser.add_argument("--steps", type=int, default=4, help="workflow steps per scenario")
    parser.add_argument("--steps-cap", type=int, default=64, help="step cap for figure12/13")
    parser.add_argument("--sim-ranks", type=int, default=4, help="representative simulation ranks")
    parser.add_argument("--data-mib", type=int, default=32, help="per-rank MiB for the synthetic figures")
    parser.add_argument(
        "--cores",
        default="",
        help=(
            "comma-separated core counts (figure14/16/18 and pipelines); "
            "elastic/elastic-model accept a single value (the total to split)"
        ),
    )
    parser.add_argument("--store", default="", help="JSONL result store path (enables resume)")
    parser.add_argument("--trace", action="store_true", help="keep tracing enabled (slower)")
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "cProfile one scenario of the chosen figure (the first case) and "
            "print the top-20 cumulative entries instead of running the sweep"
        ),
    )
    return parser


def profile_one(spec: SweepSpec) -> int:
    """Profile the first scenario of ``spec`` and print the hot-path table.

    Future hot-path work should start here: the table shows where one
    representative scenario of the family actually spends its time, which is
    what the fast-path optimisations in ``docs/performance.md`` were guided
    by.
    """
    import cProfile
    import pstats

    cases = spec.cases()
    if not cases:
        print("error: the selected figure expands to zero scenarios", file=sys.stderr)
        return 1
    case = cases[0]
    print(f"profiling scenario {case.label!r} of {spec.name} ...")

    from repro.tenants.scheduler import run_tenants
    from repro.tenants.spec import TenantSpec
    from repro.workflow.pipeline import PipelineSpec
    from repro.workflow.runner import run_pipeline, run_workflow

    config = case.config
    if isinstance(config, TenantSpec):
        runner = run_tenants
    elif isinstance(config, PipelineSpec):
        runner = run_pipeline
    else:
        runner = run_workflow
    runner(config)  # warm imports and caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    result = runner(config)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(20)
    events = result.stats.get("events_processed", 0.0)
    print(f"scenario events_processed={events:.0f}  end_to_end={result.end_to_end_time:.3f}s")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.sweep``; returns the exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    args = _parser().parse_args(argv)
    spec = build_spec(args)
    if args.profile:
        return profile_one(spec)

    def progress(record: SweepRecord, done: int, total: int) -> None:
        """Print one progress row as each scenario finishes."""
        status = "skip" if record.skipped else ("ERROR" if not record.ok else "ok")
        print(f"[{done}/{total}] {record.label:<32s} {status} ({record.elapsed:.2f}s)", flush=True)

    runner = SweepRunner(
        workers=args.workers,
        store=args.store or None,
        trace=True if args.trace else False,
        progress=progress,
    )
    start = time.perf_counter()
    records = runner.run(spec)
    wall = time.perf_counter() - start

    from repro.bench.report import format_table

    rows = []
    for record in records:
        if record.result is not None:
            summary = record.result
            end_to_end = summary.end_to_end_time
            failed = summary.failed
        else:
            end_to_end = float(record.summary.get("end_to_end_time", float("nan")))
            failed = bool(record.summary.get("failed", not record.ok))
        rows.append(
            [
                record.label,
                "skipped" if record.skipped else ("error" if not record.ok else "run"),
                round(end_to_end, 2),
                "FAILED" if failed else "",
            ]
        )
    print()
    print(
        format_table(
            ["label", "status", "end-to-end (s)", ""],
            rows,
            title=f"{spec.name}: {len(records)} scenarios, workers={args.workers}, wall={wall:.1f}s",
        )
    )
    errored = [r for r in records if not r.ok]
    if errored:
        print(f"\n{len(errored)} scenario(s) crashed:", file=sys.stderr)
        for record in errored:
            print(f"--- {record.label}\n{record.error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
