"""JSON-lines persistence for sweep results, with resume support.

Each completed scenario is appended as one self-contained JSON object, so a
store survives crashes mid-sweep (at worst the final, partially written line
is discarded on load).  A record carries the resume key ``(label, config_hash)``
plus a flat summary of the :class:`~repro.workflow.result.WorkflowResult` —
enough to feed :mod:`repro.bench.report` tables without re-running anything.
Traces are deliberately not persisted; re-run the single scenario of interest
with ``trace=True`` to regenerate one.

The full record schema — including the per-stage/per-coupling breakdowns and
the elastic rebalance timeline — is documented in ``docs/sweep-format.md``.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.workflow.result import WorkflowResult

__all__ = ["BatchWriter", "ResultStore", "VOLATILE_KEYS", "result_payload"]

#: Record fields excluded from the canonical merged view: wall-clock noise
#: (``elapsed``) and the campaign provenance stamps (``shard``/``attempt``/
#: ``worker``/``poisoned``) that a single-host run never writes.  Dropping
#: them makes a distributed campaign's canonical bytes comparable to a
#: single-host sweep of the same spec (see ``docs/campaigns.md``).
VOLATILE_KEYS: FrozenSet[str] = frozenset(
    {"elapsed", "shard", "attempt", "worker", "poisoned"}
)


def result_payload(result: WorkflowResult) -> Dict[str, object]:
    """Flatten a workflow result into the JSON-safe summary stored per line."""
    payload: Dict[str, object] = {
        "transport": result.transport,
        "end_to_end_time": result.end_to_end_time,
        "simulation_only_time": result.simulation_only_time,
        "breakdown": result.breakdown.as_dict(),
        "stats": {k: float(v) for k, v in result.stats.items()},
        "xmit_wait": result.xmit_wait,
        "total_cores": result.total_cores,
        "block_bytes": result.block_bytes,
        "failed": result.failed,
        "failure_reason": result.failure_reason,
    }
    if result.stage_breakdowns:
        payload["stages"] = {
            name: breakdown.as_dict()
            for name, breakdown in result.stage_breakdowns.items()
        }
    if result.coupling_transports:
        payload["couplings"] = dict(result.coupling_transports)
        payload["coupling_stats"] = {
            name: {k: float(v) for k, v in stats.items()}
            for name, stats in result.coupling_stats.items()
        }
        payload["coupling_block_bytes"] = dict(result.coupling_block_bytes)
    if result.rebalances:
        # The elastic controller's decision timeline, in decision order;
        # RebalanceEvent.from_dict rebuilds the events on load.
        payload["rebalances"] = [event.as_dict() for event in result.rebalances]
    if result.stage_assist_ranks:
        # Lifetime spawn census of the rank-elastic stages (the per-epoch
        # counts are on the rebalance timeline's rank_spawn/rank_retire
        # events).
        payload["stage_assist_ranks"] = {
            name: int(count) for name, count in result.stage_assist_ranks.items()
        }
    if result.faults:
        # The fault injector's applied timeline, in time order;
        # FaultEvent.from_dict rebuilds the events on load.
        payload["faults"] = [event.as_dict() for event in result.faults]
    if result.jobs:
        # The tenant scheduler's job timeline, in time order;
        # JobEvent.from_dict rebuilds the events on load.
        payload["jobs"] = [event.as_dict() for event in result.jobs]
    return payload


class ResultStore:
    """Append-only JSONL store of sweep records keyed by ``(label, config_hash)``."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def __repr__(self) -> str:
        return f"<ResultStore {str(self.path)!r}>"

    @property
    def quarantine_path(self) -> Path:
        """Where corrupt mid-file lines are moved (``<store>.quarantine``)."""
        return self.path.with_name(self.path.name + ".quarantine")

    # -- reading -----------------------------------------------------------
    def iter_records(self, heal: bool = True) -> Iterator[Dict[str, object]]:
        """Yield every intact record in file order.

        Two kinds of damage are tolerated rather than raised:

        * A **torn tail** — the final line lacks its newline (the writer
          crashed mid-append).  It is skipped here and healed by the next
          writer, exactly as before.
        * A **corrupt mid-file line** — a complete line that is not valid
          JSON or not a record (e.g. a partial disk write that a later
          append ran past).  With ``heal`` (the default) such lines are
          moved to :attr:`quarantine_path` with a warning and the store file
          is rewritten without them, so resume keeps working and the
          corruption is preserved for inspection instead of silently
          shadowing records on every read.

        Healing happens when the iterator is exhausted; an abandoned partial
        iteration quarantines nothing.
        """
        if not self.path.exists():
            return
        # Partial disk writes can tear multi-byte sequences, so decode
        # permissively: a mangled line is quarantined as a unit either way.
        raw = self.path.read_text(encoding="utf-8", errors="replace")
        lines = raw.split("\n")
        torn_tail = bool(lines and lines[-1] != "")
        if lines and lines[-1] == "":
            lines.pop()
        corrupt: List[int] = []
        for lineno, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            record: object = None
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                record = None
            if isinstance(record, dict) and "label" in record:
                yield record
            elif not (torn_tail and lineno == len(lines) - 1):
                corrupt.append(lineno)
        if heal and corrupt:
            self._quarantine(lines, corrupt, torn_tail)

    def _quarantine(self, lines: List[str], corrupt: List[int], torn_tail: bool) -> None:
        """Move corrupt mid-file lines aside and rewrite the store without them."""
        bad = set(corrupt)
        with self.quarantine_path.open("a", encoding="utf-8") as fh:
            for lineno in corrupt:
                fh.write(lines[lineno] + "\n")
        keep = [line for lineno, line in enumerate(lines) if lineno not in bad]
        text = "\n".join(keep)
        if keep and not torn_tail:
            text += "\n"
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.path)
        warnings.warn(
            f"{self.path}: quarantined {len(corrupt)} corrupt mid-file "
            f"record(s) into {self.quarantine_path.name}",
            RuntimeWarning,
            stacklevel=3,
        )

    def load(self) -> List[Dict[str, object]]:
        """Every intact record as a list (see :meth:`iter_records`)."""
        return list(self.iter_records())

    def completed_keys(self) -> Set[Tuple[str, str]]:
        """Resume keys of every scenario already recorded as executed.

        Scenarios recorded as *errored* (the worker crashed, as opposed to a
        modelled :class:`~repro.transports.base.TransportFault` failure) are
        not treated as completed, so a re-run retries them.
        """
        keys: Set[Tuple[str, str]] = set()
        for record in self.iter_records():
            if record.get("ok", True):
                keys.add((str(record["label"]), str(record.get("config_hash", ""))))
        return keys

    def get(self, label: str, config_hash: str) -> Optional[Dict[str, object]]:
        """The most recent record for a resume key, or ``None``."""
        found: Optional[Dict[str, object]] = None
        for record in self.iter_records():
            if record.get("label") == label and record.get("config_hash") == config_hash:
                found = record
        return found

    # -- canonical view and merging ----------------------------------------
    def canonical_records(
        self, volatile: FrozenSet[str] = VOLATILE_KEYS
    ) -> List[Dict[str, object]]:
        """The store's order- and provenance-independent merged record set.

        One record per resume key — the latest ``ok`` record if any (an
        earlier failed attempt never shadows the retry that succeeded), else
        the latest record — sorted by key, with the ``volatile`` fields
        dropped.  Two stores that executed the same scenarios hold equal
        canonical records regardless of completion order, retries, or which
        host ran which shard.
        """
        latest: Dict[Tuple[str, str], Dict[str, object]] = {}
        for record in self.iter_records():
            key = (str(record.get("label")), str(record.get("config_hash", "")))
            previous = latest.get(key)
            if (
                previous is None
                or record.get("ok", True)
                or not previous.get("ok", True)
            ):
                latest[key] = record
        return [
            {k: v for k, v in latest[key].items() if k not in volatile}
            for key in sorted(latest)
        ]

    def canonical_bytes(self, volatile: FrozenSet[str] = VOLATILE_KEYS) -> bytes:
        """The canonical record set serialised as deterministic JSONL bytes.

        This is the byte-identity artefact of ``docs/campaigns.md``: a
        distributed campaign's store and a single-host sweep's store of the
        same spec serialise to equal bytes here.
        """
        lines = [
            json.dumps(record, sort_keys=True)
            for record in self.canonical_records(volatile)
        ]
        return ("\n".join(lines) + "\n" if lines else "").encode("utf-8")

    def merge_from(self, other: "ResultStore") -> int:
        """Append ``other``'s records this store has no completed result for.

        The offline counterpart of the campaign coordinator's streaming
        merge: completed keys are never duplicated, failed attempts of keys
        already completed here are dropped, and everything else (including
        failures worth retrying) is appended verbatim.  Returns the number
        of records appended.
        """
        done = self.completed_keys()
        appended = 0
        for record in other.iter_records():
            key = (str(record.get("label")), str(record.get("config_hash", "")))
            if key in done:
                continue
            self.append(record)
            appended += 1
            if record.get("ok", True):
                done.add(key)
        return appended

    # -- writing -----------------------------------------------------------
    def _torn_tail(self) -> bool:
        """Whether the file ends in a half-written line (a crash artefact).

        Appending straight after a torn line would concatenate the new
        record onto it and corrupt both; writers heal the file with one
        newline first, turning the torn tail into an ignorable corrupt line.
        """
        try:
            with self.path.open("rb") as fh:
                fh.seek(-1, 2)
                return fh.read(1) != b"\n"
        except (OSError, ValueError):
            return False

    def append(self, record: Dict[str, object]) -> None:
        """Append one already-flattened record as a single JSON line.

        Opens, writes and flushes per call — maximally crash-safe but slow
        for high-rate producers; batch writers should use :meth:`batch`.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        healing = "\n" if self._torn_tail() else ""
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(healing + json.dumps(record, sort_keys=True) + "\n")
            fh.flush()

    def batch(self, flush_every: int = 16) -> "BatchWriter":
        """A buffered appender holding the file open across records.

        Use as a context manager; records are flushed to disk every
        ``flush_every`` appends and on exit, so a crash mid-batch loses at
        most the records buffered since the last flush — every line that
        *did* reach the file is intact, which is all resume needs (the
        lost scenarios simply re-run).
        """
        return BatchWriter(self, flush_every=flush_every)


class BatchWriter:
    """Buffered batch-append handle of one :class:`ResultStore`.

    The JSONL contract is unchanged: one self-contained record per line,
    append-only.  What changes is the write path — one ``open`` for the
    whole batch instead of one per record, with periodic flushes.
    """

    def __init__(self, store: ResultStore, flush_every: int = 16):
        if flush_every <= 0:
            raise ValueError("flush_every must be positive")
        self.store = store
        self.flush_every = flush_every
        self.appended = 0
        self._unflushed = 0
        self._fh = None

    def __enter__(self) -> "BatchWriter":
        self.store.path.parent.mkdir(parents=True, exist_ok=True)
        healing = self.store._torn_tail()
        self._fh = self.store.path.open("a", encoding="utf-8")
        if healing:
            self._fh.write("\n")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def append(self, record: Dict[str, object]) -> None:
        """Buffer one already-flattened record (flushed every ``flush_every``)."""
        if self._fh is None:
            raise RuntimeError("batch writer is not open; use it as a context manager")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.appended += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Force buffered records to disk."""
        if self._fh is not None and self._unflushed:
            self._fh.flush()
            self._unflushed = 0

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None
            self._unflushed = 0
