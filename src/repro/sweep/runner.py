"""Fan sweep cases out over worker processes, with isolation and resume.

The runner executes every :class:`~repro.sweep.spec.SweepCase` of a spec —
serially in-process (``workers=0``) or across a ``multiprocessing`` pool —
and yields one :class:`SweepRecord` per case.  Guarantees:

* **Determinism** — each case gets a seed derived from its base seed and its
  label (not from its position or its worker), so parallel and serial runs of
  the same sweep produce identical results under ``deterministic=True``.
* **Failure isolation** — a modelled :class:`~repro.transports.base.TransportFault`
  yields a result with ``failed=True`` (as the paper reports Decaf's overflow),
  and an outright crash in one scenario yields an errored record; neither
  kills the rest of the sweep.
* **Resume** — with a :class:`~repro.sweep.store.ResultStore` attached,
  scenarios whose ``(label, config-hash)`` key is already recorded are skipped
  and their stored summary is surfaced instead of being re-run.
* **Warm workers** — the process pool persists across :meth:`SweepRunner.run`
  calls, so grid families dispatched through one runner reuse already-forked
  workers instead of paying pool start-up per grid; cases are dispatched in
  chunks through ``imap_unordered``.  Call :meth:`SweepRunner.close` (or use
  the runner as a context manager) to release the pool.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.sweep.spec import AnyConfig, SweepCase, SweepSpec
from repro.sweep.store import ResultStore, result_payload
from repro.workflow.result import WorkflowResult

__all__ = [
    "SweepRecord",
    "SweepRunner",
    "classify_error",
    "derive_case_seed",
    "prepare_cases",
    "run_cases",
    "run_labelled",
]

#: Anything accepted as the work list of a sweep run.
Cases = Union[SweepSpec, Sequence[SweepCase], Sequence[Tuple[str, AnyConfig]]]

ProgressCallback = Callable[["SweepRecord", int, int], None]


def derive_case_seed(base_seed: int, label: str) -> int:
    """Per-case seed, stable across runs and independent of execution order."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in label.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return (int(base_seed) ^ h) % (2**31 - 1) + 1


#: Exception families worth retrying: the environment (not the scenario)
#: failed, so a later attempt on a healthy host can succeed.  ``OSError``
#: covers the I/O, connection and timeout hierarchy since Python 3.3.
_TRANSIENT_EXCEPTIONS = (OSError, MemoryError, EOFError, BrokenPipeError)


def classify_error(exc: BaseException) -> str:
    """Classify a crash as ``"transient"`` (retryable) or ``"permanent"``.

    Deterministic scenarios fail deterministically: a ``ValueError`` from a
    config will raise again on every retry, so it is permanent, while
    resource exhaustion and I/O faults are properties of the host that ran
    the case.  Campaign schedulers retry transient records with backoff and
    quarantine permanent ones immediately (see ``docs/campaigns.md``).
    """
    return "transient" if isinstance(exc, _TRANSIENT_EXCEPTIONS) else "permanent"


@dataclass
class SweepRecord:
    """Outcome of one sweep case.

    ``ok`` is False only when the scenario *crashed* (an unexpected exception
    escaped the workflow runner); a modelled transport fault is a successful
    record whose result has ``failed=True``.
    """

    label: str
    config_hash: str
    seed: int
    ok: bool = True
    skipped: bool = False
    error: str = ""
    #: Failure classification for crashed records: ``"transient"`` (retry
    #: may succeed), ``"permanent"`` (deterministic crash), ``"timeout"``
    #: (killed past ``case_timeout_seconds``) or ``"lost"`` (the worker
    #: process died without reporting).  Empty for successful records.
    error_kind: str = ""
    elapsed: float = 0.0
    result: Optional[WorkflowResult] = None
    #: Stored summary for records resumed from a result store.
    summary: Dict[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether the scenario is unusable (crashed or modelled failure)."""
        if not self.ok:
            return True
        if self.result is not None:
            return self.result.failed
        return bool(self.summary.get("failed", False))

    def payload(self) -> Dict[str, object]:
        """The JSON-safe line written to a result store."""
        record: Dict[str, object] = {
            "label": self.label,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "ok": self.ok,
            "error": self.error,
            "elapsed": self.elapsed,
        }
        if self.error_kind:
            record["error_kind"] = self.error_kind
        if self.result is not None:
            record.update(result_payload(self.result))
        return record


def _execute_case(payload: Tuple[int, str, str, AnyConfig]) -> Tuple[int, SweepRecord]:
    """Run one case; module-level so worker processes can unpickle it."""
    index, label, digest, config = payload
    from repro.tenants.scheduler import run_tenants
    from repro.tenants.spec import TenantSpec
    from repro.workflow.pipeline import PipelineSpec
    from repro.workflow.runner import run_pipeline, run_workflow

    record = SweepRecord(label=label, config_hash=digest, seed=config.seed)
    start = time.perf_counter()
    try:
        if isinstance(config, TenantSpec):
            record.result = run_tenants(config)
        elif isinstance(config, PipelineSpec):
            record.result = run_pipeline(config)
        else:
            record.result = run_workflow(config)
    except Exception as exc:  # noqa: BLE001 - one bad scenario must not kill the sweep
        record.ok = False
        record.error = traceback.format_exc(limit=8)
        record.error_kind = classify_error(exc)
    record.elapsed = time.perf_counter() - start
    return index, record


def _execute_case_to_queue(payload: Tuple[int, str, str, AnyConfig], results) -> None:
    """Child-process entry of the timeout path: run one case, ship the record."""
    results.put(_execute_case(payload))


def prepare_cases(
    cases: Cases, reseed: bool = True, trace: Optional[bool] = None
) -> List[SweepCase]:
    """The exact case list a :class:`SweepRunner` with these settings executes.

    Applies the runner's per-case preparation (label-derived reseeding and
    the sweep-wide trace override) without running anything.  Campaign
    coordinators and workers both shard over this list so their resume keys
    and records match a single-host run byte for byte.
    """
    runner = SweepRunner(workers=0, reseed=reseed, trace=trace)
    return [runner._prepare(case) for case in runner._as_cases(cases)]


class SweepRunner:
    """Execute a sweep, optionally across a process pool and against a store.

    Parameters
    ----------
    workers:
        ``0`` (or ``1``) runs in-process and serially; ``n > 1`` fans out over
        an ``n``-process pool.  ``None`` uses the machine's CPU count.
    store:
        Optional :class:`ResultStore` (or path) recording every executed case
        and providing resume.
    reseed:
        Derive a per-case seed from the config's seed and the case label
        (default).  Disable to run every case with its config's seed verbatim.
    trace:
        ``None`` leaves each config's ``trace`` flag untouched; ``True`` /
        ``False`` overrides it sweep-wide (sweeps default the flag off via the
        bench specs, since traces dominate pickling and memory cost).
    progress:
        Callback ``(record, done, total)`` invoked as records arrive
        (completion order under a pool, case order when serial).
    case_timeout_seconds:
        Wall-clock budget per case.  A case still running past it is
        *killed* and recorded as a failed record with
        ``error_kind="timeout"``, and its slot is immediately replenished —
        one hung scenario can no longer stall the whole sweep.  Enforcing a
        kill requires process isolation, so with a timeout set every case
        runs in a fresh child process (even at ``workers=0``, where one
        child runs at a time) instead of through the persistent pool.
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        store: Union[ResultStore, str, None] = None,
        reseed: bool = True,
        trace: Optional[bool] = None,
        progress: Optional[ProgressCallback] = None,
        mp_context: Optional[str] = None,
        case_timeout_seconds: Optional[float] = None,
    ):
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if case_timeout_seconds is not None and case_timeout_seconds <= 0:
            raise ValueError("case_timeout_seconds must be positive")
        self.case_timeout_seconds = case_timeout_seconds
        self.workers = int(workers)
        self.store = ResultStore(store) if isinstance(store, (str,)) else store
        self.reseed = reseed
        self.trace = trace
        self.progress = progress
        self.mp_context = mp_context
        #: Records flushed to the store after this many buffered appends.
        self.store_flush_every = 16
        self._pool = None
        self._pool_size = 0

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self, size_hint: int):
        """The persistent worker pool, created on first parallel dispatch.

        Sized at ``min(workers, size_hint)`` so a small dispatch does not
        fork idle workers; a warm pool is reused as long as it is big enough
        for the new dispatch, and grown (recreated) when a later, larger
        grid arrives.
        """
        desired = min(self.workers, max(1, size_hint))
        if self._pool is not None and self._pool_size < desired:
            self.close()
        if self._pool is None:
            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else multiprocessing.get_context()
            )
            self._pool = ctx.Pool(processes=desired)
            self._pool_size = desired
        return self._pool

    def close(self) -> None:
        """Release the persistent worker pool (idempotent; runner stays usable)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # noqa: D105 - best-effort cleanup
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter may be shutting down
            pass

    # -- preparation -------------------------------------------------------
    @staticmethod
    def _as_cases(cases: Cases) -> List[SweepCase]:
        if isinstance(cases, SweepSpec):
            return cases.cases()
        out: List[SweepCase] = []
        for case in cases:
            out.append(case if isinstance(case, SweepCase) else SweepCase(*case))
        return out

    def _prepare(self, case: SweepCase) -> SweepCase:
        config = case.config
        changes: Dict[str, object] = {}
        if self.trace is not None and config.trace != self.trace:
            changes["trace"] = self.trace
        if self.reseed:
            seed = derive_case_seed(config.seed, case.label)
            if seed != config.seed:
                changes["seed"] = seed
        return SweepCase(case.label, config.replace(**changes)) if changes else case

    # -- execution ---------------------------------------------------------
    def run(self, cases: Cases) -> List[SweepRecord]:
        """Run (or resume) the sweep; records are returned in case order."""
        prepared = [self._prepare(case) for case in self._as_cases(cases)]
        total = len(prepared)
        done = 0
        records: List[Optional[SweepRecord]] = [None] * total

        # One pass over the store: the latest intact record per resume key
        # (crashed records are excluded so a re-run retries them).
        stored: Dict[Tuple[str, str], Dict[str, object]] = {}
        if self.store is not None:
            for rec in self.store.iter_records():
                if rec.get("ok", True):
                    key = (str(rec["label"]), str(rec.get("config_hash", "")))
                    stored[key] = rec

        pending: List[Tuple[int, str, str, AnyConfig]] = []
        for index, case in enumerate(prepared):
            digest = case.config_digest
            if (case.label, digest) in stored:
                record = SweepRecord(
                    label=case.label,
                    config_hash=digest,
                    seed=case.config.seed,
                    skipped=True,
                    summary=stored[(case.label, digest)],
                )
                records[index] = record
                done += 1
                if self.progress is not None:
                    self.progress(record, done, total)
            else:
                pending.append((index, case.label, digest, case.config))

        writer = (
            self.store.batch(flush_every=self.store_flush_every)
            if self.store is not None
            else None
        )

        def _collect(index: int, record: SweepRecord) -> None:
            nonlocal done
            records[index] = record
            done += 1
            if writer is not None and not record.skipped:
                writer.append(record.payload())
            if self.progress is not None:
                self.progress(record, done, total)

        try:
            if writer is not None:
                writer.__enter__()
            if self.case_timeout_seconds is not None and pending:
                self._run_with_timeout(pending, _collect)
            elif self.workers > 1 and len(pending) > 1:
                # Chunked dispatch over the persistent pool: one IPC round per
                # chunk instead of per case, sized so every worker still gets
                # several chunks for load balancing.
                chunksize = max(1, len(pending) // (self.workers * 4))
                pool = self._ensure_pool(len(pending))
                try:
                    for index, record in pool.imap_unordered(
                        _execute_case, pending, chunksize=chunksize
                    ):
                        _collect(index, record)
                except BaseException:
                    # A transport error inside a case is captured in its
                    # record; reaching here means the pool itself broke
                    # (unpicklable case, dead worker) or the parent is being
                    # torn down (KeyboardInterrupt) — terminate the workers
                    # now rather than leaking them, and start the next run()
                    # from a clean pool.
                    self.close()
                    raise
            else:
                for payload in pending:
                    index, record = _execute_case(payload)
                    _collect(index, record)
        finally:
            if writer is not None:
                writer.close()

        return [r for r in records if r is not None]

    def _run_with_timeout(
        self,
        pending: List[Tuple[int, str, str, AnyConfig]],
        collect: Callable[[int, SweepRecord], None],
    ) -> None:
        """Run cases in killable child processes under the per-case deadline.

        Up to ``max(1, workers)`` children run at once, each executing one
        case and shipping its record back over a queue.  A child that
        outlives ``case_timeout_seconds`` is killed and recorded as a
        ``timeout``; one that dies without reporting (OOM-killed, crashed
        interpreter) is recorded as ``lost``.  Either way the slot is
        replenished with the next pending case.
        """
        ctx = multiprocessing.get_context(self.mp_context)
        results = ctx.Queue()
        limit = max(1, self.workers)
        timeout = float(self.case_timeout_seconds or 0.0)
        todo = list(pending)
        # index -> (process, payload, deadline)
        active: Dict[int, Tuple[object, Tuple[int, str, str, AnyConfig], float]] = {}

        def _fail_record(payload, kind: str, message: str) -> SweepRecord:
            _index, label, digest, config = payload
            return SweepRecord(
                label=label,
                config_hash=digest,
                seed=config.seed,
                ok=False,
                error=message,
                error_kind=kind,
                elapsed=timeout if kind == "timeout" else 0.0,
            )

        def _drain() -> Dict[int, SweepRecord]:
            drained: Dict[int, SweepRecord] = {}
            while True:
                try:
                    index, record = results.get_nowait()
                except queue_module.Empty:
                    return drained
                drained[index] = record

        def _finish(index: int, record: SweepRecord) -> None:
            proc, _payload, _deadline = active.pop(index)
            proc.join()
            collect(index, record)

        try:
            while todo or active:
                # Replenish: keep `limit` children running while work remains.
                while todo and len(active) < limit:
                    payload = todo.pop(0)
                    proc = ctx.Process(
                        target=_execute_case_to_queue, args=(payload, results)
                    )
                    proc.daemon = True
                    proc.start()
                    active[payload[0]] = (proc, payload, time.monotonic() + timeout)

                # Block until a record arrives or the nearest deadline passes.
                nearest = min(deadline for _, _, deadline in active.values())
                wait = min(0.5, max(0.01, nearest - time.monotonic()))
                try:
                    index, record = results.get(True, wait)
                    _finish(index, record)
                    continue
                except queue_module.Empty:
                    pass

                now = time.monotonic()
                drained: Dict[int, SweepRecord] = {}
                for index in list(active):
                    proc, payload, deadline = active[index]
                    if now >= deadline:
                        # A record racing the deadline through the queue
                        # still wins; otherwise kill and record the timeout.
                        drained.update(_drain())
                        if index in drained:
                            _finish(index, drained.pop(index))
                            continue
                        proc.kill()
                        _finish(
                            index,
                            _fail_record(
                                payload,
                                "timeout",
                                f"timeout: case exceeded {timeout:g}s and was killed",
                            ),
                        )
                    elif proc.exitcode is not None:
                        # The child exited; its record may still be in flight.
                        drained.update(_drain())
                        if index in drained:
                            _finish(index, drained.pop(index))
                        elif proc.exitcode != 0:
                            _finish(
                                index,
                                _fail_record(
                                    payload,
                                    "lost",
                                    "lost: worker process died with exit code "
                                    f"{proc.exitcode} before reporting a record",
                                ),
                            )
                        # A clean exit with no record yet means the record is
                        # still flushing through the queue; the next loop turn
                        # (bounded by the case deadline) picks it up.
                for index, record in drained.items():
                    if index in active:
                        _finish(index, record)
        except BaseException:
            for proc, _payload, _deadline in active.values():
                proc.kill()
                proc.join()
            raise
        finally:
            results.close()
            results.join_thread()

    def run_labelled(self, cases: Cases) -> Dict[str, WorkflowResult]:
        """Run the sweep and return ``{label: WorkflowResult}`` per executed case.

        A case that *crashed* (as opposed to a modelled transport fault, which
        yields a result with ``failed=True``) raises here with its captured
        traceback — callers of this convenience index the dict by label, and a
        silently missing key would bury the real error.  Skipped (resumed)
        cases carry no in-memory result and are omitted; use :meth:`run` when
        the per-record status matters.
        """
        records = self.run(cases)
        crashed = [r for r in records if not r.ok]
        if crashed:
            raise RuntimeError(
                f"{len(crashed)} sweep case(s) crashed; first was "
                f"{crashed[0].label!r}:\n{crashed[0].error}"
            )
        return {
            record.label: record.result
            for record in records
            if record.result is not None
        }


def run_cases(cases: Cases, workers: int = 0, **kwargs) -> List[SweepRecord]:
    """One-shot convenience around :class:`SweepRunner.run`."""
    return SweepRunner(workers=workers, **kwargs).run(cases)


def run_labelled(cases: Cases, workers: int = 0, **kwargs) -> Dict[str, WorkflowResult]:
    """One-shot convenience around :class:`SweepRunner.run_labelled`."""
    return SweepRunner(workers=workers, **kwargs).run_labelled(cases)
