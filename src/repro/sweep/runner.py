"""Fan sweep cases out over worker processes, with isolation and resume.

The runner executes every :class:`~repro.sweep.spec.SweepCase` of a spec —
serially in-process (``workers=0``) or across a ``multiprocessing`` pool —
and yields one :class:`SweepRecord` per case.  Guarantees:

* **Determinism** — each case gets a seed derived from its base seed and its
  label (not from its position or its worker), so parallel and serial runs of
  the same sweep produce identical results under ``deterministic=True``.
* **Failure isolation** — a modelled :class:`~repro.transports.base.TransportFault`
  yields a result with ``failed=True`` (as the paper reports Decaf's overflow),
  and an outright crash in one scenario yields an errored record; neither
  kills the rest of the sweep.
* **Resume** — with a :class:`~repro.sweep.store.ResultStore` attached,
  scenarios whose ``(label, config-hash)`` key is already recorded are skipped
  and their stored summary is surfaced instead of being re-run.
* **Warm workers** — the process pool persists across :meth:`SweepRunner.run`
  calls, so grid families dispatched through one runner reuse already-forked
  workers instead of paying pool start-up per grid; cases are dispatched in
  chunks through ``imap_unordered``.  Call :meth:`SweepRunner.close` (or use
  the runner as a context manager) to release the pool.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.sweep.spec import AnyConfig, SweepCase, SweepSpec
from repro.sweep.store import ResultStore, result_payload
from repro.workflow.result import WorkflowResult

__all__ = ["SweepRecord", "SweepRunner", "run_cases", "run_labelled", "derive_case_seed"]

#: Anything accepted as the work list of a sweep run.
Cases = Union[SweepSpec, Sequence[SweepCase], Sequence[Tuple[str, AnyConfig]]]

ProgressCallback = Callable[["SweepRecord", int, int], None]


def derive_case_seed(base_seed: int, label: str) -> int:
    """Per-case seed, stable across runs and independent of execution order."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in label.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return (int(base_seed) ^ h) % (2**31 - 1) + 1


@dataclass
class SweepRecord:
    """Outcome of one sweep case.

    ``ok`` is False only when the scenario *crashed* (an unexpected exception
    escaped the workflow runner); a modelled transport fault is a successful
    record whose result has ``failed=True``.
    """

    label: str
    config_hash: str
    seed: int
    ok: bool = True
    skipped: bool = False
    error: str = ""
    elapsed: float = 0.0
    result: Optional[WorkflowResult] = None
    #: Stored summary for records resumed from a result store.
    summary: Dict[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether the scenario is unusable (crashed or modelled failure)."""
        if not self.ok:
            return True
        if self.result is not None:
            return self.result.failed
        return bool(self.summary.get("failed", False))

    def payload(self) -> Dict[str, object]:
        """The JSON-safe line written to a result store."""
        record: Dict[str, object] = {
            "label": self.label,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "ok": self.ok,
            "error": self.error,
            "elapsed": self.elapsed,
        }
        if self.result is not None:
            record.update(result_payload(self.result))
        return record


def _execute_case(payload: Tuple[int, str, str, AnyConfig]) -> Tuple[int, SweepRecord]:
    """Run one case; module-level so worker processes can unpickle it."""
    index, label, digest, config = payload
    from repro.tenants.scheduler import run_tenants
    from repro.tenants.spec import TenantSpec
    from repro.workflow.pipeline import PipelineSpec
    from repro.workflow.runner import run_pipeline, run_workflow

    record = SweepRecord(label=label, config_hash=digest, seed=config.seed)
    start = time.perf_counter()
    try:
        if isinstance(config, TenantSpec):
            record.result = run_tenants(config)
        elif isinstance(config, PipelineSpec):
            record.result = run_pipeline(config)
        else:
            record.result = run_workflow(config)
    except Exception:  # noqa: BLE001 - one bad scenario must not kill the sweep
        record.ok = False
        record.error = traceback.format_exc(limit=8)
    record.elapsed = time.perf_counter() - start
    return index, record


class SweepRunner:
    """Execute a sweep, optionally across a process pool and against a store.

    Parameters
    ----------
    workers:
        ``0`` (or ``1``) runs in-process and serially; ``n > 1`` fans out over
        an ``n``-process pool.  ``None`` uses the machine's CPU count.
    store:
        Optional :class:`ResultStore` (or path) recording every executed case
        and providing resume.
    reseed:
        Derive a per-case seed from the config's seed and the case label
        (default).  Disable to run every case with its config's seed verbatim.
    trace:
        ``None`` leaves each config's ``trace`` flag untouched; ``True`` /
        ``False`` overrides it sweep-wide (sweeps default the flag off via the
        bench specs, since traces dominate pickling and memory cost).
    progress:
        Callback ``(record, done, total)`` invoked as records arrive
        (completion order under a pool, case order when serial).
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        store: Union[ResultStore, str, None] = None,
        reseed: bool = True,
        trace: Optional[bool] = None,
        progress: Optional[ProgressCallback] = None,
        mp_context: Optional[str] = None,
    ):
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = int(workers)
        self.store = ResultStore(store) if isinstance(store, (str,)) else store
        self.reseed = reseed
        self.trace = trace
        self.progress = progress
        self.mp_context = mp_context
        #: Records flushed to the store after this many buffered appends.
        self.store_flush_every = 16
        self._pool = None
        self._pool_size = 0

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self, size_hint: int):
        """The persistent worker pool, created on first parallel dispatch.

        Sized at ``min(workers, size_hint)`` so a small dispatch does not
        fork idle workers; a warm pool is reused as long as it is big enough
        for the new dispatch, and grown (recreated) when a later, larger
        grid arrives.
        """
        desired = min(self.workers, max(1, size_hint))
        if self._pool is not None and self._pool_size < desired:
            self.close()
        if self._pool is None:
            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else multiprocessing.get_context()
            )
            self._pool = ctx.Pool(processes=desired)
            self._pool_size = desired
        return self._pool

    def close(self) -> None:
        """Release the persistent worker pool (idempotent; runner stays usable)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # noqa: D105 - best-effort cleanup
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter may be shutting down
            pass

    # -- preparation -------------------------------------------------------
    @staticmethod
    def _as_cases(cases: Cases) -> List[SweepCase]:
        if isinstance(cases, SweepSpec):
            return cases.cases()
        out: List[SweepCase] = []
        for case in cases:
            out.append(case if isinstance(case, SweepCase) else SweepCase(*case))
        return out

    def _prepare(self, case: SweepCase) -> SweepCase:
        config = case.config
        changes: Dict[str, object] = {}
        if self.trace is not None and config.trace != self.trace:
            changes["trace"] = self.trace
        if self.reseed:
            seed = derive_case_seed(config.seed, case.label)
            if seed != config.seed:
                changes["seed"] = seed
        return SweepCase(case.label, config.replace(**changes)) if changes else case

    # -- execution ---------------------------------------------------------
    def run(self, cases: Cases) -> List[SweepRecord]:
        """Run (or resume) the sweep; records are returned in case order."""
        prepared = [self._prepare(case) for case in self._as_cases(cases)]
        total = len(prepared)
        done = 0
        records: List[Optional[SweepRecord]] = [None] * total

        # One pass over the store: the latest intact record per resume key
        # (crashed records are excluded so a re-run retries them).
        stored: Dict[Tuple[str, str], Dict[str, object]] = {}
        if self.store is not None:
            for rec in self.store.iter_records():
                if rec.get("ok", True):
                    key = (str(rec["label"]), str(rec.get("config_hash", "")))
                    stored[key] = rec

        pending: List[Tuple[int, str, str, AnyConfig]] = []
        for index, case in enumerate(prepared):
            digest = case.config_digest
            if (case.label, digest) in stored:
                record = SweepRecord(
                    label=case.label,
                    config_hash=digest,
                    seed=case.config.seed,
                    skipped=True,
                    summary=stored[(case.label, digest)],
                )
                records[index] = record
                done += 1
                if self.progress is not None:
                    self.progress(record, done, total)
            else:
                pending.append((index, case.label, digest, case.config))

        writer = (
            self.store.batch(flush_every=self.store_flush_every)
            if self.store is not None
            else None
        )

        def _collect(index: int, record: SweepRecord) -> None:
            nonlocal done
            records[index] = record
            done += 1
            if writer is not None and not record.skipped:
                writer.append(record.payload())
            if self.progress is not None:
                self.progress(record, done, total)

        try:
            if writer is not None:
                writer.__enter__()
            if self.workers > 1 and len(pending) > 1:
                # Chunked dispatch over the persistent pool: one IPC round per
                # chunk instead of per case, sized so every worker still gets
                # several chunks for load balancing.
                chunksize = max(1, len(pending) // (self.workers * 4))
                pool = self._ensure_pool(len(pending))
                try:
                    for index, record in pool.imap_unordered(
                        _execute_case, pending, chunksize=chunksize
                    ):
                        _collect(index, record)
                except Exception:
                    # A transport error inside a case is captured in its
                    # record; reaching here means the pool itself broke
                    # (unpicklable case, dead worker) — drop it so the next
                    # run() starts from a clean pool.
                    self.close()
                    raise
            else:
                for payload in pending:
                    index, record = _execute_case(payload)
                    _collect(index, record)
        finally:
            if writer is not None:
                writer.close()

        return [r for r in records if r is not None]

    def run_labelled(self, cases: Cases) -> Dict[str, WorkflowResult]:
        """Run the sweep and return ``{label: WorkflowResult}`` per executed case.

        A case that *crashed* (as opposed to a modelled transport fault, which
        yields a result with ``failed=True``) raises here with its captured
        traceback — callers of this convenience index the dict by label, and a
        silently missing key would bury the real error.  Skipped (resumed)
        cases carry no in-memory result and are omitted; use :meth:`run` when
        the per-record status matters.
        """
        records = self.run(cases)
        crashed = [r for r in records if not r.ok]
        if crashed:
            raise RuntimeError(
                f"{len(crashed)} sweep case(s) crashed; first was "
                f"{crashed[0].label!r}:\n{crashed[0].error}"
            )
        return {
            record.label: record.result
            for record in records
            if record.result is not None
        }


def run_cases(cases: Cases, workers: int = 0, **kwargs) -> List[SweepRecord]:
    """One-shot convenience around :class:`SweepRunner.run`."""
    return SweepRunner(workers=workers, **kwargs).run(cases)


def run_labelled(cases: Cases, workers: int = 0, **kwargs) -> Dict[str, WorkflowResult]:
    """One-shot convenience around :class:`SweepRunner.run_labelled`."""
    return SweepRunner(workers=workers, **kwargs).run_labelled(cases)
