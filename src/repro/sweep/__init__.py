"""Parallel scenario-sweep engine.

Declarative parameter grids (:class:`~repro.sweep.spec.ParamGrid`,
:class:`~repro.sweep.spec.SweepSpec`) expand into labelled workflow
configurations; :class:`~repro.sweep.runner.SweepRunner` fans them out over a
process pool with per-case failure isolation and deterministic seeding; and
:class:`~repro.sweep.store.ResultStore` persists one JSON line per scenario
with ``(label, config-hash)`` resume.  See the README's "Scenario sweeps"
section for usage.
"""

from repro.sweep.spec import (
    MACHINES,
    ParamGrid,
    SweepCase,
    SweepSpec,
    config_hash,
    resolve_machine,
)
from repro.sweep.runner import (
    SweepRecord,
    SweepRunner,
    classify_error,
    derive_case_seed,
    prepare_cases,
    run_cases,
    run_labelled,
)
from repro.sweep.store import VOLATILE_KEYS, ResultStore, result_payload

__all__ = [
    "MACHINES",
    "ParamGrid",
    "SweepCase",
    "SweepSpec",
    "config_hash",
    "resolve_machine",
    "SweepRecord",
    "SweepRunner",
    "classify_error",
    "derive_case_seed",
    "prepare_cases",
    "run_cases",
    "run_labelled",
    "ResultStore",
    "VOLATILE_KEYS",
    "result_payload",
]
