"""Span recording for simulated and threaded executions."""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One traced interval on one rank's timeline."""

    rank: int
    category: str
    start: float
    end: float
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends ({self.end}) before it starts ({self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether any part of the span lies inside the window ``[t0, t1]``."""
        return self.start < t1 and self.end > t0

    def clipped(self, t0: float, t1: float) -> "Span":
        """The portion of the span inside ``[t0, t1]``."""
        return Span(
            self.rank,
            self.category,
            max(self.start, t0),
            min(self.end, t1),
            dict(self.meta),
        )


class Tracer:
    """Collects spans, optionally filtered, from a workflow execution.

    The tracer is deliberately clock-agnostic: callers pass explicit start and
    end times (the simulation clock for simulated runs, ``time.perf_counter``
    for the threaded runtime), or use :meth:`span` with a ``clock`` callable.
    """

    def __init__(self, enabled: bool = True, categories: Optional[List[str]] = None):
        self.enabled = enabled
        self._category_filter = set(categories) if categories is not None else None
        self._spans: List[Span] = []

    def record(
        self,
        rank: int,
        category: str,
        start: float,
        end: float,
        **meta: Any,
    ) -> Optional[Span]:
        """Record one span (no-op if tracing is disabled or filtered out)."""
        if not self.enabled:
            return None
        if self._category_filter is not None and category not in self._category_filter:
            return None
        span = Span(rank, category, start, end, meta)
        self._spans.append(span)
        return span

    @contextmanager
    def span(self, rank: int, category: str, clock: Callable[[], float], **meta: Any) -> Iterator[None]:
        """Context manager that records the wall time of its body."""
        start = clock()
        try:
            yield
        finally:
            self.record(rank, category, start, clock(), **meta)

    # -- access -----------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def ranks(self) -> List[int]:
        return sorted({s.rank for s in self._spans})

    def categories(self) -> List[str]:
        return sorted({s.category for s in self._spans})

    def spans_for(self, rank: Optional[int] = None, category: Optional[str] = None) -> List[Span]:
        """Spans filtered by rank and/or category, in recording order."""
        out = self._spans
        if rank is not None:
            out = [s for s in out if s.rank == rank]
        if category is not None:
            out = [s for s in out if s.category == category]
        return list(out)

    def total_time(self, category: str, rank: Optional[int] = None) -> float:
        """Sum of span durations for ``category`` (optionally one rank)."""
        return sum(s.duration for s in self.spans_for(rank, category))

    def clear(self) -> None:
        self._spans.clear()

    def merge(self, other: "Tracer") -> "Tracer":
        """Return a new tracer containing the spans of both inputs."""
        merged = Tracer(enabled=True)
        merged._spans = sorted(
            self._spans + other._spans, key=lambda s: (s.start, s.rank)
        )
        return merged
