"""Gantt-style timelines built from traces (the paper's Figures 4–6, 17, 19)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.trace.tracer import Span, Tracer

__all__ = ["GanttRow", "Timeline", "render_ascii"]


@dataclass
class GanttRow:
    """All spans of one rank, clipped to the timeline window and sorted."""

    rank: int
    spans: List[Span]

    def busy_time(self) -> float:
        return sum(s.duration for s in self.spans)

    def category_time(self, category: str) -> float:
        return sum(s.duration for s in self.spans if s.category == category)


class Timeline:
    """A window ``[t0, t1]`` of a trace organised per rank.

    This mirrors how the paper presents traces: a snapshot of a few seconds is
    cut out of the full execution and examined rank by rank.
    """

    def __init__(self, tracer: Tracer, t0: Optional[float] = None, t1: Optional[float] = None):
        spans = tracer.spans
        if not spans:
            self.t0 = 0.0 if t0 is None else t0
            self.t1 = 0.0 if t1 is None else t1
            self.rows: List[GanttRow] = []
            return
        lo = min(s.start for s in spans)
        hi = max(s.end for s in spans)
        self.t0 = lo if t0 is None else float(t0)
        self.t1 = hi if t1 is None else float(t1)
        if self.t1 < self.t0:
            raise ValueError("t1 must not precede t0")
        by_rank: Dict[int, List[Span]] = {}
        for s in spans:
            if s.overlaps(self.t0, self.t1):
                by_rank.setdefault(s.rank, []).append(s.clipped(self.t0, self.t1))
        self.rows = [
            GanttRow(rank, sorted(rank_spans, key=lambda s: s.start))
            for rank, rank_spans in sorted(by_rank.items())
        ]

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def row(self, rank: int) -> GanttRow:
        for r in self.rows:
            if r.rank == rank:
                return r
        raise KeyError(f"rank {rank} not present in this timeline")

    def categories(self) -> List[str]:
        return sorted({s.category for row in self.rows for s in row.spans})

    def category_time(self, category: str) -> float:
        """Total time in ``category`` across all ranks within the window."""
        return sum(row.category_time(category) for row in self.rows)


#: Single-character glyphs used by :func:`render_ascii` for common categories.
_DEFAULT_GLYPHS = {
    "compute": "C",
    "collision": "c",
    "streaming": "s",
    "update": "u",
    "analysis": "A",
    "transfer": "T",
    "put": "P",
    "get": "G",
    "stall": ".",
    "lock": "L",
    "barrier": "B",
    "waitall": "W",
    "sendrecv": "x",
    "io_write": "w",
    "io_read": "r",
    "idle": " ",
}


def render_ascii(
    timeline: Timeline,
    width: int = 100,
    glyphs: Optional[Dict[str, str]] = None,
    ranks: Optional[Sequence[int]] = None,
) -> str:
    """Render a timeline as fixed-width ASCII art, one row per rank.

    Later spans overwrite earlier ones within a character cell; unknown
    categories use the first letter of their name.  The rendering is meant for
    terminal inspection and documentation, not pixel accuracy.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    table = dict(_DEFAULT_GLYPHS)
    if glyphs:
        table.update(glyphs)
    span_t0, span_t1 = timeline.t0, timeline.t1
    total = max(span_t1 - span_t0, 1e-12)
    lines: List[str] = []
    selected = timeline.rows
    if ranks is not None:
        wanted = set(ranks)
        selected = [r for r in selected if r.rank in wanted]
    for row in selected:
        cells = [" "] * width
        for span in row.spans:
            a = int((span.start - span_t0) / total * width)
            b = int((span.end - span_t0) / total * width)
            b = max(b, a + 1)
            glyph = table.get(span.category, span.category[:1] or "?")
            for i in range(a, min(b, width)):
                cells[i] = glyph
        lines.append(f"rank {row.rank:>4} |{''.join(cells)}|")
    header = f"t = [{span_t0:.4f}, {span_t1:.4f}] s, width {width} chars"
    return "\n".join([header] + lines)
