"""Tracing and Gantt-timeline utilities.

The paper relies on TAU and Intel Trace Analyzer traces (Figures 4, 5, 6, 17
and 19) to explain *why* each transport behaves the way it does: where
simulation ranks stall, how long ``MPI_Sendrecv`` takes with and without a
staging library, how many time steps fit into a fixed wall-clock window.

This package provides the same capability for the simulated workflows and the
threaded Zipper runtime:

* :class:`Tracer` records ``(rank, category, start, end, meta)`` spans;
* :class:`Timeline` / :class:`GanttRow` turn a trace into per-rank rows
  suitable for textual rendering or plotting;
* :func:`summarize_categories` and :func:`steps_in_window` compute the
  aggregate quantities quoted in the paper (per-category time, steps completed
  within a snapshot window).
"""

from repro.trace.tracer import Span, Tracer
from repro.trace.gantt import GanttRow, Timeline, render_ascii
from repro.trace.analysis import (
    summarize_categories,
    steps_in_window,
    category_share,
    compare_traces,
)

__all__ = [
    "Span",
    "Tracer",
    "GanttRow",
    "Timeline",
    "render_ascii",
    "summarize_categories",
    "steps_in_window",
    "category_share",
    "compare_traces",
]
