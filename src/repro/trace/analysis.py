"""Aggregate analysis over traces: the numbers quoted alongside the paper's trace figures."""

from __future__ import annotations

from typing import Dict, Optional

from repro.trace.gantt import Timeline
from repro.trace.tracer import Tracer

__all__ = [
    "summarize_categories",
    "steps_in_window",
    "category_share",
    "compare_traces",
]


def summarize_categories(tracer: Tracer, rank: Optional[int] = None) -> Dict[str, float]:
    """Total time per category (over all ranks, or one rank)."""
    out: Dict[str, float] = {}
    for span in tracer.spans:
        if rank is not None and span.rank != rank:
            continue
        out[span.category] = out.get(span.category, 0.0) + span.duration
    return out


def category_share(tracer: Tracer, category: str, rank: Optional[int] = None) -> float:
    """Fraction of traced time spent in ``category`` (0 if the trace is empty)."""
    sums = summarize_categories(tracer, rank)
    total = sum(sums.values())
    if total <= 0:
        return 0.0
    return sums.get(category, 0.0) / total


def steps_in_window(
    tracer: Tracer,
    t0: float,
    t1: float,
    step_category: str = "step",
    rank: Optional[int] = None,
) -> float:
    """How many application time steps complete inside the window ``[t0, t1]``.

    The paper's trace comparisons count steps within a fixed snapshot (e.g.
    "Zipper runs three simulation steps while Decaf runs two"); partial steps
    count fractionally by the overlapped portion of their duration.
    """
    if t1 < t0:
        raise ValueError("t1 must not precede t0")
    count = 0.0
    for span in tracer.spans_for(rank=rank, category=step_category):
        if not span.overlaps(t0, t1) or span.duration <= 0:
            continue
        clipped = span.clipped(t0, t1)
        count += clipped.duration / span.duration
    return count


def compare_traces(
    a: Tracer,
    b: Tracer,
    window: float,
    step_category: str = "step",
    rank: int = 0,
) -> Dict[str, float]:
    """Compare two traces over an equal-length window starting at each trace's origin.

    Returns the number of steps each trace completes inside the window and the
    resulting speed ratio (``a`` relative to ``b``), which is how the paper
    quantifies Figure 17 ("this speedup of 1.4x is almost the same as the
    speedup shown in Figure 16 on 204 cores").
    """
    if window <= 0:
        raise ValueError("window must be positive")

    def origin(tracer: Tracer) -> float:
        spans = tracer.spans_for(rank=rank)
        return min((s.start for s in spans), default=0.0)

    a0, b0 = origin(a), origin(b)
    steps_a = steps_in_window(a, a0, a0 + window, step_category, rank)
    steps_b = steps_in_window(b, b0, b0 + window, step_category, rank)
    ratio = steps_a / steps_b if steps_b > 0 else float("inf")
    return {"steps_a": steps_a, "steps_b": steps_b, "ratio": ratio}


def timeline(tracer: Tracer, t0: Optional[float] = None, t1: Optional[float] = None) -> Timeline:
    """Convenience wrapper building a :class:`~repro.trace.gantt.Timeline`."""
    return Timeline(tracer, t0, t1)
