"""Apply a :class:`~repro.faults.plan.FaultPlan` to a running pipeline.

The :class:`FaultInjector` is an ordinary simulated process: it sleeps to
each scheduled fault time with the engine's own pooled timeouts, mutates
the cluster/coupling state (compute fault scale, link bandwidth, transport
bandwidth share), and records every transition as a
:class:`~repro.faults.plan.FaultEvent`.  Because the schedule is fixed at
construction and every mutation is driven by the deterministic event loop,
an identical re-run reproduces the exact fault timeline.

Crash handling is the one runtime-dependent piece: a ``node_crash`` seizes
every core slot of the victim node (in-flight compute drains first, new
work queues behind the seizure), holds them for a downtime computed from
the work lost since the stage's last checkpoint plus the plan's fixed
recovery cost, and then releases the node — forcing any elastic assist
rank on the stage through the runner's ``retire_rank``/``spawn_rank``
lifecycle.  While a crash's recovery instant is not yet pinned,
:attr:`FaultInjector.next_fault_time` returns the current time so compute
coalescing declines to fast-forward across it; once pinned, the instant
bounds batch deadlines exactly like the elastic controller's next epoch.

Injector events are *not* subtracted from ``events_processed``: faults are
modelled workload, so their events are part of the run.  The required
bit-identity is with the *no-fault* plan, which creates no injector at all.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.faults.plan import WINDOWED_KINDS, FaultEvent, FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import ComputeNode
    from repro.workflow.context import PipelineContext
    from repro.workflow.runner import PipelineRunner

__all__ = ["FaultInjector"]


class FaultInjector:
    """Replays a fault plan against a pipeline as ordinary simcore events."""

    def __init__(
        self,
        ctx: "PipelineContext",
        plan: FaultPlan,
        runner: Optional["PipelineRunner"] = None,
    ):
        self.ctx = ctx
        self.plan = plan
        self.runner = runner
        #: Applied transitions in time order; copied into the run's
        #: :class:`~repro.workflow.result.WorkflowResult` as ``faults``.
        self.timeline: List[FaultEvent] = []
        entries: List[Tuple[float, int, str, FaultSpec]] = []
        for index, spec in enumerate(plan.specs):
            self._validate_target(spec)
            entries.append((spec.time, index, "inject", spec))
            if spec.kind in WINDOWED_KINDS:
                entries.append((spec.time + spec.duration, index, "recover", spec))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        self._schedule = entries
        self._cursor = 0
        #: Recovery instants of in-progress crashes whose end time is known.
        self._pending_recoveries: List[float] = []
        #: Crashes still draining the victim node; their recovery instant is
        #: not determined yet, so coalescing must not fast-forward at all.
        self._unpinned_crashes = 0

    def _validate_target(self, spec: FaultSpec) -> None:
        """Fail at construction if a spec names an unknown stage/coupling."""
        if spec.kind == "transport_restart":
            try:
                self.ctx.coupling(spec.target)
            except KeyError:
                raise ValueError(
                    f"fault plan names unknown coupling {spec.target!r}"
                ) from None
        else:
            try:
                self.ctx.pipeline.stage(spec.target)
            except KeyError:
                raise ValueError(
                    f"fault plan names unknown stage {spec.target!r}"
                ) from None

    @property
    def next_fault_time(self) -> float:
        """Earliest instant the injector may next mutate simulation state.

        Compute coalescing treats this exactly like the elastic
        controller's ``next_epoch_time``: a batch may not fast-forward past
        it, so every fault lands on the same engine state the per-event
        path would have seen.  Returns ``inf`` once the plan is exhausted.
        """
        if self._unpinned_crashes:
            return self.ctx.env.now
        when = math.inf
        if self._cursor < len(self._schedule):
            when = self._schedule[self._cursor][0]
        for pending in self._pending_recoveries:
            if pending < when:
                when = pending
        return when

    def start(self) -> None:
        """Spawn the injector process (call once, before ``env.run``)."""
        self.ctx.env.process(self._run())

    def _run(self) -> Generator:
        env = self.ctx.env
        while self._cursor < len(self._schedule):
            when, _index, action, spec = self._schedule[self._cursor]
            if when > env.now:
                yield env.sleep_until(when)
            self._cursor += 1
            if spec.kind == "node_crash":
                env.process(self._crash_process(spec))
            elif action == "inject":
                self._inject(spec)
            else:
                self._recover(spec)

    def _record(self, spec: FaultSpec, action: str, detail: Dict[str, float]) -> None:
        self.timeline.append(
            FaultEvent(
                time=self.ctx.env.now,
                kind=spec.kind,
                action=action,
                target=spec.target,
                detail=detail,
            )
        )

    def _victim_node(self, spec: FaultSpec) -> Tuple[int, "ComputeNode"]:
        """The (rank, node) a node-scoped spec lands on."""
        rank = spec.rank % self.ctx.stage_ranks(spec.target)
        node_id = self.ctx.stage_node(spec.target, rank)
        return rank, self.ctx.cluster.node(node_id)

    def _inject(self, spec: FaultSpec) -> None:
        if spec.kind == "straggler":
            rank, node = self._victim_node(spec)
            node.set_fault_scale(1.0 / spec.severity)
            node.degraded = True
            self._record(
                spec,
                "inject",
                {
                    "node": float(node.node_id),
                    "rank": float(rank),
                    "scale": 1.0 / spec.severity,
                },
            )
        elif spec.kind == "link_degrade":
            rank, node = self._victim_node(spec)
            self.ctx.cluster.network.scale_node_bandwidth(node.node_id, spec.severity)
            self._record(
                spec,
                "inject",
                {
                    "node": float(node.node_id),
                    "rank": float(rank),
                    "scale": float(spec.severity),
                },
            )
        else:  # transport_restart
            cctx = self.ctx.coupling(spec.target)
            cctx.set_bandwidth_share(cctx.lease_share * spec.severity)
            self._record(spec, "inject", {"share": float(cctx.bandwidth_share)})

    def _recover(self, spec: FaultSpec) -> None:
        if spec.kind == "straggler":
            rank, node = self._victim_node(spec)
            node.set_fault_scale(1.0)
            node.degraded = False
            self._record(
                spec,
                "recover",
                {"node": float(node.node_id), "rank": float(rank), "scale": 1.0},
            )
        elif spec.kind == "link_degrade":
            rank, node = self._victim_node(spec)
            self.ctx.cluster.network.scale_node_bandwidth(
                node.node_id, 1.0 / spec.severity
            )
            self._record(
                spec,
                "recover",
                {
                    "node": float(node.node_id),
                    "rank": float(rank),
                    "scale": 1.0 / spec.severity,
                },
            )
        else:  # transport_restart
            cctx = self.ctx.coupling(spec.target)
            cctx.set_bandwidth_share(cctx.lease_share / spec.severity)
            self._record(spec, "recover", {"share": float(cctx.bandwidth_share)})

    def _crash_downtime(self, spec: FaultSpec, rank: int, node: "ComputeNode") -> Tuple[float, float]:
        """(lost_steps, downtime) for a crash, per the checkpoint model.

        A crashed rank loses every step completed since its last checkpoint
        (all of them when ``checkpoint_interval`` is None) and recomputes
        the lost work at the node's nominal core speed on top of the plan's
        fixed ``recovery_seconds`` respawn cost.  Stages without a
        ``steps_done`` counter (pure consumers) lose no recomputable work.
        """
        pipeline = self.ctx.pipeline
        stage = pipeline.stage(spec.target)
        stats = self.ctx.stage_rank_stats[spec.target][rank]
        steps_done = float(stats.get("steps_done", 0.0))
        interval = stage.checkpoint_interval
        lost = steps_done if interval is None else math.fmod(steps_done, float(interval))
        step_ref = stage.workload.sim_step_seconds_for_block(
            pipeline.stage_block_bytes(spec.target)
        )
        downtime = self.plan.recovery_seconds + lost * step_ref / node.spec.core_speed
        return lost, downtime

    def _seize_and_hold(self, node: ComputeNode, downtime: float) -> Generator:
        """Seize every core slot of ``node``, hold for ``downtime``, release.

        In-flight compute drains first (its durations were frozen at issue
        time), new work queues behind the seizure, and the node-local fast
        paths observe the waiters and fall back to the queued path.  The
        recovery instant is pinned into :attr:`next_fault_time`'s sources
        the moment every slot is held; until then the injector reports the
        current time so no batch can fast-forward across the crash.
        Returns the pinned recovery instant (the caller unpins it once the
        post-recovery mutations are done).
        """
        env = self.ctx.env
        cores = node.cores
        self._unpinned_crashes += 1
        requests = [cores.request() for _ in range(node.spec.cores)]
        for request in requests:
            yield request
        end = env.now + downtime
        self._pending_recoveries.append(end)
        self._unpinned_crashes -= 1
        if downtime > 0:
            yield env.sleep(downtime)
        for request in requests:
            cores.release(request)
        return end

    def _crash_process(self, spec: FaultSpec) -> Generator:
        """Crash one rank's node: drain, hold for the downtime, respawn."""
        rank, node = self._victim_node(spec)
        lost, downtime = self._crash_downtime(spec, rank, node)
        node.degraded = True
        retired = False
        runner = self.runner
        if runner is not None and runner.stage_assists(spec.target) > 0:
            runner.retire_rank(spec.target)
            retired = True
        self._record(
            spec,
            "inject",
            {
                "node": float(node.node_id),
                "rank": float(rank),
                "lost_steps": lost,
                "downtime": downtime,
            },
        )
        end = yield from self._seize_and_hold(node, downtime)
        node.degraded = False
        if retired:
            runner.spawn_rank(spec.target)
        self._record(
            spec,
            "recover",
            {
                "node": float(node.node_id),
                "rank": float(rank),
                "lost_steps": lost,
                "downtime": downtime,
            },
        )
        self._pending_recoveries.remove(end)
