"""Deterministic fault injection for the coupled-workflow simulator.

Public surface: the plan vocabulary (:class:`FaultSpec`,
:class:`FaultPlan`, :class:`FaultEvent`) and the :class:`FaultInjector`
that replays a plan against a running pipeline.  See ``docs/faults.md``
for the fault model, checkpoint/restart semantics and a worked timeline.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import KINDS, WINDOWED_KINDS, FaultEvent, FaultPlan, FaultSpec

__all__ = [
    "KINDS",
    "WINDOWED_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
]
