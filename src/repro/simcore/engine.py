"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, List, Optional, Tuple

from repro import sanitize as _sanitize
from repro.simcore.errors import SimulationError
from repro.simcore.events import (
    Event,
    NORMAL,
    PENDING,
    PooledTimeout,
    Process,
    ProcessGenerator,
    Timeout,
)
from repro.simcore.resources import Release, StoreGet, StorePut

__all__ = ["Environment", "EmptySchedule", "Infinity", "POOLED_EVENT_CLASSES"]

#: A time value larger than any event time the models use.
Infinity = float("inf")

#: Upper bound on the recycled-:class:`PooledTimeout` free list.  Generous
#: enough for every rank of a large pipeline to have one sleep in flight;
#: beyond it, extra events are simply left to the garbage collector.
_TIMEOUT_POOL_LIMIT = 512

#: Upper bound on each opt-in event free list (see ``pool_events``).
_EVENT_POOL_LIMIT = 512

#: Event classes the engine recycles.  ``PooledTimeout`` is always pooled
#: (its contract is opt-in at the call site: only ``Environment.sleep`` /
#: ``sleep_until`` hand one out); the other three are pooled only under
#: ``Environment(pool_events=True)``, which the pipeline runner enables on
#: the strength of the F501 escape-analysis certificate (``python -m
#: repro.lint --flow-report``).  The lint meta-tests pin this tuple to the
#: set of classes the analysis certifies.
POOLED_EVENT_CLASSES: Tuple[str, ...] = (
    "PooledTimeout",
    "StorePut",
    "StoreGet",
    "Release",
)

#: Sentinel parked in a recycled event's ``_value`` slot while it sits on a
#: free list.  Guards against double-recycling: an escaping holder that
#: yields an already-recycled event again is skipped instead of inserting
#: the same object into the pool twice (the sanitizer turns that same
#: misuse into a hard trap).
_RECYCLED = object()


class EmptySchedule(Exception):
    """Raised internally by :meth:`Environment.step` when no events remain."""


class Environment:
    """Holds the simulation clock and executes events in time order.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds by convention across
        this code base).
    pool_events:
        Recycle :class:`~repro.simcore.resources.StorePut` /
        :class:`~repro.simcore.resources.StoreGet` /
        :class:`~repro.simcore.resources.Release` events through per-class
        free lists, exactly like the always-on :class:`PooledTimeout` pool.
        Off by default because the *public* event semantics allow holding a
        reference past processing; the pipeline runner turns it on
        (``PipelineSpec.pool_events``) under the F501 escape-analysis
        certificate that no model code does.  Bit-identical either way —
        recycling changes which Python object carries an event, never the
        event order or ``events_processed``.
    sanitize:
        Run with the :mod:`repro.sanitize` determinism traps armed:
        clock/global-RNG guards during event execution, poisoned (never
        reused) recyclable events, crediting validation, and
        order-sensitivity checks.  ``None`` (the default) defers to the
        ``REPRO_SANITIZE`` environment variable.

    Notes
    -----
    Ties in event time are broken first by scheduling *priority* (urgent events
    such as process initialisation and interrupts run before normal events),
    then by insertion order, which keeps the simulation fully deterministic.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "_events_processed",
        "_timeout_pool",
        "_solo_callback",
        "_pool_events",
        "_sanitize",
        "_in_event",
        "_put_pool",
        "_get_pool",
        "_release_pool",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        *,
        pool_events: bool = False,
        sanitize: Optional[bool] = None,
    ):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self._events_processed = 0
        self._timeout_pool: List[PooledTimeout] = []
        self._pool_events = bool(pool_events)
        self._sanitize = _sanitize.default_enabled() if sanitize is None else bool(sanitize)
        self._in_event = False
        self._put_pool: List[StorePut] = []
        self._get_pool: List[StoreGet] = []
        self._release_pool: List[Release] = []
        if self._sanitize:
            _sanitize.install_guards()
        # True while step() is executing the callback of an event that had
        # exactly one.  In that window, a freshly created event that (a) is
        # already triggered and (b) faces an empty same-time horizon (no
        # queued event at the current instant) is guaranteed to be the very
        # next pop with nothing running in between — so resources may
        # complete it in place (see Store._put/_get, Resource._do_request)
        # and let the creator continue synchronously, which is
        # order-identical to the queue trip.
        self._solo_callback = False

    # -- clock and bookkeeping -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (useful for model stats)."""
        return self._events_processed

    @property
    def pool_events(self) -> bool:
        """Whether Store/Release events are recycled through free lists."""
        return self._pool_events

    @property
    def sanitize(self) -> bool:
        """Whether the runtime determinism sanitizer is armed (see ``repro.sanitize``)."""
        return self._sanitize

    def __repr__(self) -> str:
        return (
            f"<Environment t={self._now:.6g} queued={len(self._queue)} "
            f"processed={self._events_processed}>"
        )

    # -- event creation helpers ------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from ``generator`` and return its event."""
        return Process(self, generator)

    def sleep(self, delay: float) -> PooledTimeout:
        """A recycled timeout firing ``delay`` from now (hot-path ``timeout``).

        Allocation-free when the free list is warm.  The returned event obeys
        the :class:`~repro.simcore.events.PooledTimeout` contract: yield it
        immediately from exactly one process and never store or share it —
        it returns to the free list the moment it is processed.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        event = self._pooled_timeout()
        event._delay = delay
        heappush(self._queue, (self._now + delay, NORMAL, next(self._eid), event))
        return event

    def sleep_until(self, when: float) -> PooledTimeout:
        """A recycled timeout firing at the *absolute* time ``when``.

        The coalescing hook: a batch fast-forward computes its exact end time
        with the same float arithmetic the per-call path would use, then jumps
        the clock straight to it — scheduling by absolute time avoids the
        ``now + (end - now)`` round trip that would break bit-identity.
        """
        if when < self._now:
            raise SimulationError(f"sleep_until({when!r}) lies before now ({self._now!r})")
        event = self._pooled_timeout()
        event._delay = when - self._now
        heappush(self._queue, (when, NORMAL, next(self._eid), event))
        return event

    def _pooled_timeout(self) -> PooledTimeout:
        """Pop a recycled timeout from the free list, or allocate a fresh one.

        A recycled event only needs its callback list re-armed: pooled
        timeouts are always ok/undefused and step() cleared the value when
        it returned the event to the pool.
        """
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            return event
        event = PooledTimeout.__new__(PooledTimeout)
        event.env = self
        event.callbacks = []
        event._value = None
        event._ok = True
        event._defused = False
        return event

    # -- fast-path accounting ---------------------------------------------
    def credit_events(self, count: int) -> None:
        """Account ``count`` events that a fast path elided.

        The engine's fast paths (core grants on guaranteed-uncontended nodes,
        compute coalescing) skip queue trips whose processing would have had
        no observable effect except advancing :attr:`events_processed`.  Each
        fast path credits exactly the events the equivalent slow path would
        have consumed, so the counter stays a *model* property — bit-stable
        for fixed seeds — rather than an engine implementation detail.

        Under sanitize the count is validated: it must be a positive
        integer, credited while an event is executing (a fast path only
        ever elides queue trips from inside one) — anything else corrupts
        the machine-independent count and traps immediately instead of
        surfacing as a bit-identity diff three layers up.
        """
        if self._sanitize:
            if count.__class__ is not int or count <= 0:
                raise _sanitize.SanitizerTrap(
                    f"sanitizer: credit_events({count!r}) — elided-event "
                    "credits must be positive ints (docs/performance.md)"
                )
            if not self._in_event:
                raise _sanitize.SanitizerTrap(
                    "sanitizer: credit_events() outside event execution — "
                    "fast paths elide queue trips only from within step()"
                )
        self._events_processed += count

    def trigger_inplace(self, event: Event, value: Any = None) -> None:
        """Trigger a freshly created event, completing it in place when safe.

        The shared trigger of the resource layer's fast paths, keeping the
        safety proof in one audited spot.  The event must be untriggered and
        callback-free (just created, no reference escaped).  When the engine
        is executing a solo callback (:attr:`_solo_callback`) and no other
        event is queued at the current instant, the event's queue trip would
        be the immediate next pop with nothing running in between — so it is
        completed in place (the elided pop is counted) and its creator
        continues synchronously, order-identical to the queued behaviour.
        Otherwise the event is scheduled normally via ``succeed``.
        """
        queue = self._queue
        if self._solo_callback and (not queue or queue[0][0] > self._now):
            event._ok = True
            event._value = value
            event.callbacks = None
            self._events_processed += 1
        else:
            event.succeed(value)

    def complete(self, event: Event) -> None:
        """Process a callback-free event in place, skipping the queue.

        For bookkeeping events that nothing can ever wait on (the event is
        triggered and completed within its creator, before any reference
        escapes), a queue trip only burns a heap slot.  The event must carry
        no callbacks and must already hold its outcome; it is marked
        processed and counted exactly as if it had been popped normally.
        """
        if event.callbacks:
            raise SimulationError("complete() requires an event with no callbacks")
        if event._value is PENDING:
            raise SimulationError("complete() requires an already-triggered event")
        event.callbacks = None
        self._events_processed += 1

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place ``event`` on the queue ``delay`` time units in the future."""
        # Hot path: every timeout, message and process resumption goes through
        # here, so the zero-delay common case skips the float comparison work.
        if delay:
            if delay < 0:
                raise SimulationError(f"negative delay {delay!r}")
            when = self._now + delay
        else:
            when = self._now
        heappush(self._queue, (when, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if not self._queue:
            return Infinity
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to its time)."""
        if self._sanitize:
            return self._sanitized_step()
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        when, _prio, _eid, event = heappop(queue)

        self._now = when
        callbacks = event.callbacks
        if callbacks is None:
            raise SimulationError(f"{event!r} was scheduled twice")
        event.callbacks = None
        if callbacks:
            if len(callbacks) == 1:
                self._solo_callback = True
                try:
                    callbacks[0](event)
                finally:
                    self._solo_callback = False
            else:
                for callback in callbacks:
                    callback(event)
        self._events_processed += 1

        if event._ok:
            cls = type(event)
            if cls is PooledTimeout:
                # Every waiter has been resumed (inside the callback loop
                # above); the event object can serve the next sleep.
                pool = self._timeout_pool
                if len(pool) < _TIMEOUT_POOL_LIMIT:
                    event._value = None
                    pool.append(event)
            elif self._pool_events:
                if cls is StorePut:
                    pool = self._put_pool
                    if len(pool) < _EVENT_POOL_LIMIT:
                        event._value = _RECYCLED
                        event.item = None
                        pool.append(event)
                elif cls is StoreGet:
                    pool = self._get_pool
                    if len(pool) < _EVENT_POOL_LIMIT:
                        event._value = _RECYCLED
                        event.filter_fn = None
                        pool.append(event)
        elif not event._defused:
            # Nobody waited on a failed event: surface the error to the caller
            # rather than silently dropping it.
            raise event._value

    def _sanitized_step(self) -> None:
        """The :meth:`step` body with the :mod:`repro.sanitize` traps armed.

        A separate implementation so the unsanitized hot path pays exactly
        one extra attribute test.  Differences: the clock/RNG guards are
        active while callbacks run (``try/finally`` so a trap cannot leave
        them armed), crediting is validated (``_in_event``), and recyclable
        events are *poisoned* instead of pooled — the free lists stay empty
        and any use-after-recycle trips a :class:`~repro.sanitize.SanitizerTrap`.
        """
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        when, _prio, _eid, event = heappop(queue)

        self._now = when
        callbacks = event.callbacks
        if callbacks is None:
            raise SimulationError(f"{event!r} was scheduled twice")
        event.callbacks = None
        _sanitize.enter_step()
        self._in_event = True
        try:
            if callbacks:
                if len(callbacks) == 1:
                    self._solo_callback = True
                    try:
                        callbacks[0](event)
                    finally:
                        self._solo_callback = False
                else:
                    for callback in callbacks:
                        callback(event)
        finally:
            self._in_event = False
            _sanitize.exit_step()
        self._events_processed += 1

        if event._ok:
            cls = type(event)
            if cls is PooledTimeout or (
                self._pool_events and (cls is StorePut or cls is StoreGet)
            ):
                _sanitize.poison_event(event)
        elif not event._defused:
            raise event._value

    def _recycle_consumed(self, event: Event) -> None:
        """Recycle an in-place-completed event its creator just consumed.

        Called by :meth:`Process._resume` (only when ``pool_events`` is on)
        for events that never took a queue trip: completed in place by
        ``trigger_inplace``/``complete`` and consumed synchronously by the
        yielding process.  At that point the creating process has read the
        value and, for the F501-certified classes, no other reference
        exists.  The ``_RECYCLED`` sentinel makes a double consume (an
        escaping holder yielding the event again) a no-op here instead of a
        pool corruption; under sanitize the event is poisoned so the same
        misuse traps.
        """
        cls = type(event)
        if cls is StorePut:
            if event._value is _RECYCLED:
                return
            if self._sanitize:
                _sanitize.poison_event(event)
                return
            pool = self._put_pool
            if len(pool) < _EVENT_POOL_LIMIT:
                event._value = _RECYCLED
                event.item = None
                pool.append(event)
        elif cls is StoreGet:
            if event._value is _RECYCLED:
                return
            if self._sanitize:
                _sanitize.poison_event(event)
                return
            pool = self._get_pool
            if len(pool) < _EVENT_POOL_LIMIT:
                event._value = _RECYCLED
                event.filter_fn = None
                pool.append(event)

    def _recycle_release(self, release: Release) -> None:
        """Return a completed :class:`Release` to its free list immediately.

        A release's observable state after ``Resource.release`` returns is a
        constant (processed, ok, value ``None``) and the F501 certificate
        shows no call site stores one, so the object recycles at its
        creation site rather than waiting for a consumption hook.  Under
        sanitize nothing is pooled (allocations stay fresh), keeping
        legitimate ``yield resource.release(...)`` idioms trap-free.
        """
        if self._sanitize:
            return
        pool = self._release_pool
        if len(pool) < _EVENT_POOL_LIMIT:
            pool.append(release)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until no events remain;
            * a number — run until the clock reaches that time;
            * an :class:`Event` — run until that event has been processed and
              return its value.
        """
        if until is None:
            # Drain the queue (the common whole-simulation run).
            step = self.step
            while self._queue:
                step()
            return None

        if isinstance(until, Event):
            stop_event = until
            step = self.step
            while stop_event.callbacks is not None:
                if not self._queue:
                    raise SimulationError(
                        "run(until=event) exhausted the schedule before the "
                        "event was triggered"
                    )
                step()
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value

        stop_time = float(until)
        if stop_time < self._now:
            raise SimulationError(
                f"until={stop_time!r} lies before the current time {self._now!r}"
            )
        queue = self._queue
        step = self.step
        while queue and queue[0][0] <= stop_time:
            step()
        self._now = stop_time
        return None

    def run_bounded(self, stop_event: Event, stop_time: float) -> bool:
        """Run until ``stop_event`` is processed or the clock passes ``stop_time``.

        The segment primitive of the tenant co-scheduling layer: a job's
        private environment is advanced epoch by epoch, stopping either at
        the job's own completion event (return ``True``) or at the facility
        epoch boundary (return ``False``), whichever the event queue reaches
        first.

        The two outcomes deliberately mirror the two ``run(until=...)``
        modes they split the difference between:

        * when ``stop_event`` is processed, the clock is left at the event's
          own time — exactly as ``run(until=event)`` leaves it — so a
          completed segment is indistinguishable from an unsegmented run
          (no post-completion events are processed, ``events_processed`` and
          ``now`` match bit for bit);
        * otherwise the queue is drained through ``stop_time`` and the clock
          is then pinned to it, exactly as ``run(until=time)`` does, so the
          next segment resumes from the boundary.

        Raises :class:`SimulationError` if the schedule empties before the
        event triggers, and re-raises the event's value if it failed —
        the same contract as ``run(until=event)``.
        """
        bound = float(stop_time)
        if bound < self._now:
            raise SimulationError(
                f"stop_time={bound!r} lies before the current time {self._now!r}"
            )
        queue = self._queue
        step = self.step
        while stop_event.callbacks is not None:
            if not queue:
                raise SimulationError(
                    "run_bounded exhausted the schedule before the event "
                    "was triggered"
                )
            if queue[0][0] > bound:
                self._now = bound
                return False
            step()
        if not stop_event._ok:
            stop_event._defused = True
            raise stop_event._value
        return True

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, optionally bounded by ``max_events``.

        Returns the number of events processed by this call.  A bounded run is
        useful in tests that want to guard against accidental infinite event
        loops in a model.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"run_all exceeded the budget of {max_events} events"
                )
            self.step()
            processed += 1
        return processed
