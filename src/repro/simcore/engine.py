"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Generator, List, Optional, Tuple

from repro.simcore.errors import SimulationError
from repro.simcore.events import Event, NORMAL, Process, Timeout

__all__ = ["Environment", "EmptySchedule", "Infinity"]

#: A time value larger than any event time the models use.
Infinity = float("inf")


class EmptySchedule(Exception):
    """Raised internally by :meth:`Environment.step` when no events remain."""


class Environment:
    """Holds the simulation clock and executes events in time order.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds by convention across
        this code base).

    Notes
    -----
    Ties in event time are broken first by scheduling *priority* (urgent events
    such as process initialisation and interrupts run before normal events),
    then by insertion order, which keeps the simulation fully deterministic.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "_events_processed")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self._events_processed = 0

    # -- clock and bookkeeping -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (useful for model stats)."""
        return self._events_processed

    def __repr__(self) -> str:
        return (
            f"<Environment t={self._now:.6g} queued={len(self._queue)} "
            f"processed={self._events_processed}>"
        )

    # -- event creation helpers ------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return its event."""
        return Process(self, generator)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place ``event`` on the queue ``delay`` time units in the future."""
        # Hot path: every timeout, message and process resumption goes through
        # here, so the zero-delay common case skips the float comparison work.
        if delay:
            if delay < 0:
                raise SimulationError(f"negative delay {delay!r}")
            when = self._now + delay
        else:
            when = self._now
        heappush(self._queue, (when, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if not self._queue:
            return Infinity
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to its time)."""
        if not self._queue:
            raise EmptySchedule()
        when, _prio, _eid, event = heappop(self._queue)

        self._now = when
        callbacks = event.callbacks
        if callbacks is None:
            raise SimulationError(f"{event!r} was scheduled twice")
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        self._events_processed += 1

        if not event._ok and not event._defused:
            # Nobody waited on a failed event: surface the error to the caller
            # rather than silently dropping it.
            exc = event._value
            raise exc

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until no events remain;
            * a number — run until the clock reaches that time;
            * an :class:`Event` — run until that event has been processed and
              return its value.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None

        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time!r} lies before the current time {self._now!r}"
                )

        while True:
            if stop_event is not None and stop_event.processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            try:
                self.step()
            except EmptySchedule:
                if stop_event is not None and not stop_event.processed:
                    raise SimulationError(
                        "run(until=event) exhausted the schedule before the "
                        "event was triggered"
                    ) from None
                if stop_time is not None:
                    self._now = stop_time
                return None

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, optionally bounded by ``max_events``.

        Returns the number of events processed by this call.  A bounded run is
        useful in tests that want to guard against accidental infinite event
        loops in a model.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"run_all exceeded the budget of {max_events} events"
                )
            self.step()
            processed += 1
        return processed
