"""Event primitives for the discrete-event kernel.

The design follows the classic process-interaction style: model code is
written as Python generator functions ("processes") that ``yield`` events.
When a yielded event is processed by the :class:`~repro.simcore.engine.Environment`,
the process resumes with the event's value (or with an exception if the event
failed or the process was interrupted).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Iterable, List, Optional

from repro import sanitize as _sanitize
from repro.simcore.errors import Interrupt, SimulationError, StopProcess

if TYPE_CHECKING:
    from repro.simcore.engine import Environment

#: The generator type of a simulation process: yields events, receives their
#: values back, and may return a result (surfaced as the process's value).
ProcessGenerator = Generator["Event", Any, Any]

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "ProcessGenerator",
    "Event",
    "Timeout",
    "PooledTimeout",
    "Initialize",
    "Interruption",
    "Process",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Event:
    """A single occurrence in simulated time that processes may wait on.

    An event goes through three states:

    1. *pending* — created, not yet scheduled;
    2. *triggered* — scheduled to occur at a specific simulation time with a
       value (success) or exception (failure);
    3. *processed* — the environment has reached the event's time and invoked
       its callbacks.

    Events are allocated on every timeout, message and process step of a
    simulation, so the whole hierarchy uses ``__slots__``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only valid once triggered)."""
        if self._ok is None:
            raise SimulationError("ok is not defined for untriggered events")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event (the exception object for failed events)."""
        if self._value is PENDING:
            raise SimulationError("value is not available for untriggered events")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure has been acknowledged by some waiter."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the environment will not re-raise."""
        self._defused = True

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined zero-delay schedule (succeed is the hottest trigger path).
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception`` at the current time."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> "Event":
        """Copy another event's outcome onto this event and schedule it."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)
        return self

    # -- misc -----------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay!r} at {id(self):#x}>"


class PooledTimeout(Timeout):
    """A :class:`Timeout` drawn from the environment's free list.

    Created only by :meth:`Environment.sleep` / :meth:`Environment.sleep_until`
    and recycled by :meth:`Environment.step` the moment it has been processed.
    The contract that makes recycling safe: a pooled timeout must be yielded
    immediately by exactly one process and never stored, shared, or passed to
    a :class:`ConditionEvent` — any holder-after-processing would observe the
    event's *next* incarnation.  Model code that needs a shareable timeout
    uses the plain :class:`Timeout` as before.
    """

    __slots__ = ("_generation",)


class Initialize(Event):
    """Internal event used to start a newly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        assert self.callbacks is not None  # freshly created, never processed
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Internal event used to deliver an :class:`~repro.simcore.errors.Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        if process.processed:
            raise SimulationError("cannot interrupt a finished process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        assert self.callbacks is not None  # freshly created, never processed
        self.callbacks.append(self._interrupt)
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.processed:
            # The process finished between scheduling and delivery; drop it.
            return
        # Detach the process from whatever it is currently waiting for so the
        # original event's eventual processing does not resume it twice.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    A ``Process`` is itself an :class:`Event` that triggers when the generator
    returns (successfully, with the return value) or raises (failure).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"{generator!r} is not a generator; did you forget to call the "
                "process function?"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (``None`` if running)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Deliver an :class:`Interrupt` to this process at the current time."""
        Interruption(self, cause)

    # -- generator stepping ---------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        consumed_inplace = False
        while True:
            try:
                if event._ok:
                    value = event._value
                    if consumed_inplace and env._pool_events:
                        # An in-place-completed event is dead the moment its
                        # value is read: it has no callback list and (per the
                        # F501 escape certificate) this process is its only
                        # holder, so it can serve the next allocation.
                        env._recycle_consumed(event)
                    next_event = self._generator.send(value)
                else:
                    # The waiter acknowledges the failure by having it thrown
                    # into its frame.
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except StopProcess as exc:
                self._generator.close()
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event object {next_event!r}"
                )
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if next_event.callbacks is not None:
                # The event has not been processed yet; park until it is.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break
            # The event was already processed: loop immediately with its value.
            event = next_event
            consumed_inplace = True

        self._target = None if self.triggered else self._target
        env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) at {id(self):#x}>"


class ConditionEvent(Event):
    """An event that triggers when a predicate over child events is satisfied.

    The value of a ``ConditionEvent`` is a dict mapping each *triggered* child
    event to its value, in the order the children were supplied.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        if env._sanitize:
            # A condition's trigger order follows its children's schedule
            # order; building one from a set would bake hash-salted
            # iteration order into the event heap.
            _sanitize.check_ordered(events, "ConditionEvent(events=...)")
        self._evaluate = evaluate
        self._events: List[Event] = list(events)
        self._count = 0

        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _collect(self) -> Dict[Event, Any]:
        # Only events that have actually been *processed* contribute a value:
        # a Timeout carries its value from construction time, but it has not
        # "happened" until the clock reaches it.
        return {ev: ev._value for ev in self._events if ev.processed}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    def __len__(self) -> int:
        return len(self._events)


class AllOf(ConditionEvent):
    """Triggers when *all* child events have triggered (``MPI_Waitall``-like)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evs, count: count >= len(evs), events)


class AnyOf(ConditionEvent):
    """Triggers when *any* child event has triggered (``MPI_Waitany``-like)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evs, count: count >= 1 or not evs, events)
