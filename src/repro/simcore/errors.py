"""Exception types used throughout the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for all errors raised by the simulation kernel.

    Raised for misuse of the kernel API (triggering an event twice, running a
    finished environment, yielding a non-event from a process, ...).  Model
    code is encouraged to let these propagate: they indicate a bug in the
    model, not a property of the simulated system.
    """


class Interrupt(Exception):
    """Raised *inside* a process when another process interrupts it.

    The interrupting party calls :meth:`repro.simcore.events.Process.interrupt`
    with an optional ``cause``; the target process sees this exception raised
    at its current ``yield`` statement and may catch it to clean up or to react
    (the Zipper runtime uses interrupts to shut down its helper threads).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class StopProcess(Exception):
    """Raised by model code to terminate the *current* process early.

    Equivalent to ``return`` from the process generator but usable from helper
    functions that do not have access to the generator frame.
    """

    def __init__(self, value: object = None):
        super().__init__(value)
        self.value = value
