"""Discrete-event simulation kernel used by the cluster substrate.

The :mod:`repro.simcore` package provides a small, dependency-free
discrete-event simulation engine in the style of SimPy.  It is the foundation
on which the HPC cluster model (:mod:`repro.cluster`), the simulated MPI layer
(:mod:`repro.simmpi`), the baseline transport models (:mod:`repro.transports`)
and the simulated Zipper runtime are built.

The kernel is deliberately compact but complete:

* :class:`Environment` — the simulation clock and event loop.
* :class:`Event`, :class:`Timeout`, :class:`Process` — the event primitives.
* :class:`AllOf` / :class:`AnyOf` — composite events (used for ``MPI_Waitall``
  style semantics).
* :class:`Resource`, :class:`Store`, :class:`Container` — queuing resources.
* :class:`Mutex`, :class:`Semaphore`, :class:`SimBarrier`,
  :class:`ConditionVar` — synchronisation primitives (used for the lock
  services of DataSpaces/DIMES and the producer-buffer condition variables of
  Zipper's work-stealing writer thread).
* :class:`RandomStreams` — named, reproducible random-number streams.
* :class:`TimeSeriesMonitor`, :class:`TallyMonitor` — statistics collection.
* :class:`PeriodicController`, :class:`CounterDeltas`, :class:`PIDSmoother` —
  periodic control-loop events, per-epoch counter deltas and PID smoothing
  (used by the elastic adaptation layer).

Example
-------
>>> from repro.simcore import Environment, Timeout
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield Timeout(env, 1.5)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[1.5]
"""

from repro.simcore.errors import (
    SimulationError,
    Interrupt,
    StopProcess,
)
from repro.simcore.events import (
    Event,
    Timeout,
    PooledTimeout,
    Process,
    AllOf,
    AnyOf,
    ConditionEvent,
)
from repro.simcore.engine import Environment, EmptySchedule, POOLED_EVENT_CLASSES
from repro.simcore.resources import (
    Resource,
    PriorityResource,
    Store,
    FilterStore,
    Container,
)
from repro.simcore.sync import (
    Mutex,
    Semaphore,
    SimBarrier,
    ConditionVar,
    OneShotSignal,
)
from repro.simcore.rng import RandomStreams
from repro.simcore.monitor import TimeSeriesMonitor, TallyMonitor
from repro.simcore.control import PeriodicController, CounterDeltas, PIDSmoother

__all__ = [
    "SimulationError",
    "Interrupt",
    "StopProcess",
    "Event",
    "Timeout",
    "PooledTimeout",
    "Process",
    "AllOf",
    "AnyOf",
    "ConditionEvent",
    "Environment",
    "EmptySchedule",
    "Resource",
    "PriorityResource",
    "Store",
    "FilterStore",
    "Container",
    "Mutex",
    "Semaphore",
    "SimBarrier",
    "ConditionVar",
    "OneShotSignal",
    "RandomStreams",
    "TimeSeriesMonitor",
    "TallyMonitor",
    "PeriodicController",
    "CounterDeltas",
    "PIDSmoother",
    "POOLED_EVENT_CLASSES",
]
