"""Periodic control-loop primitives for in-simulation adaptation.

Adaptive layers (such as :mod:`repro.elastic`) need two things from the
kernel: a *periodic controller event* that wakes a decision callback at a
fixed simulated cadence, and a cheap *monitor hook* for turning the
monotonically growing counters the models maintain into per-epoch deltas.

Both are deliberately passive with respect to the simulation itself: a
:class:`PeriodicController` only schedules its own timeouts and never touches
model state, so a controller whose callback decides to do nothing leaves
every modelled quantity exactly as it would have been without the controller.
The controller counts the events it consumed (:attr:`PeriodicController.events_consumed`)
so harnesses that report event totals can subtract the instrumentation cost
and keep "no-op controller" runs bit-identical to uncontrolled ones.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Mapping, Optional

from repro.simcore.engine import Environment
from repro.simcore.events import Process, Timeout

__all__ = ["PeriodicController", "CounterDeltas", "PIDSmoother"]


class PeriodicController:
    """Wake a callback every ``interval`` simulated seconds.

    Parameters
    ----------
    env:
        The simulation environment to schedule against.
    interval:
        Simulated seconds between wake-ups (must be positive).
    callback:
        ``callback(now)`` invoked at every wake-up.  Returning ``False``
        stops the controller; any other return value keeps it running.
    name:
        Purely descriptive tag used in ``repr``.

    Notes
    -----
    The controller is an ordinary simulation process: it is started with
    :meth:`start` and runs until its callback asks it to stop or the
    environment's run ends.  It consumes exactly one event per wake-up plus
    one start-up event; :attr:`events_consumed` reports that total so the
    instrumentation can be subtracted from event counts.
    """

    def __init__(
        self,
        env: Environment,
        interval: float,
        callback: Callable[[float], Optional[bool]],
        name: str = "controller",
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.interval = float(interval)
        self.callback = callback
        self.name = name
        self.wakeups = 0
        self._process: Optional[Process] = None
        self._next_wakeup = float("inf")

    def start(self) -> Process:
        """Spawn the controller process (idempotent per instance)."""
        if self._process is not None:
            raise RuntimeError(f"controller {self.name!r} already started")
        self._next_wakeup = self.env.now + self.interval
        self._process = self.env.process(self._run())
        return self._process

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has been called."""
        return self._process is not None

    @property
    def events_consumed(self) -> int:
        """Events this controller has taken from the queue so far.

        One initialisation event plus one timeout per wake-up; 0 when the
        controller was never started.
        """
        if self._process is None:
            return 0
        return 1 + self.wakeups

    @property
    def next_wakeup(self) -> float:
        """Simulated time of the next scheduled wake-up (``inf`` when idle).

        Fast paths that must not run past a control decision (compute
        coalescing) treat this as their deadline: any state the callback may
        mutate is only ever mutated at these instants.
        """
        return self._next_wakeup

    def _run(self) -> Generator[Timeout, Any, None]:
        while True:
            yield Timeout(self.env, self.interval)
            self.wakeups += 1
            if self.callback(self.env.now) is False:
                self._next_wakeup = float("inf")
                return
            self._next_wakeup = self.env.now + self.interval

    def __repr__(self) -> str:
        return (
            f"<PeriodicController {self.name!r} interval={self.interval:g} "
            f"wakeups={self.wakeups}>"
        )


class PIDSmoother:
    """Discrete PID filter for smoothing in-simulation control actions.

    Bang-bang controllers (fixed-size step whenever a threshold trips)
    oscillate around the balance point; feeding the raw error ``e`` (target
    minus current holding) through

        ``u = kp * e + ki * Σ e·dt + kd * (e - e_prev) / dt``

    and applying ``u`` instead of a fixed step turns the step size into a
    damped approach: large when far from the target, vanishing near it.  The
    integral term is clamped to ``integral_limit`` (anti-windup) so a long
    period of unreachable targets — e.g. a floor-pinned stage — cannot store
    an arbitrarily large kick.

    The smoother is pure arithmetic: it schedules nothing and holds no
    simulation state, so controllers that never *apply* its output leave the
    simulation untouched.
    """

    __slots__ = ("kp", "ki", "kd", "integral_limit", "integral", "previous_error")

    def __init__(
        self,
        kp: float = 0.5,
        ki: float = 0.0,
        kd: float = 0.0,
        integral_limit: Optional[float] = None,
    ):
        if kp < 0 or ki < 0 or kd < 0:
            raise ValueError("PID gains must be non-negative")
        if integral_limit is not None and integral_limit <= 0:
            raise ValueError("integral_limit must be positive when given")
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.integral_limit = integral_limit
        self.integral = 0.0
        self.previous_error: Optional[float] = None

    def update(self, error: float, dt: float = 1.0) -> float:
        """Fold one error sample in and return the smoothed control output."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.integral += error * dt
        if self.integral_limit is not None:
            self.integral = max(-self.integral_limit, min(self.integral_limit, self.integral))
        derivative = 0.0
        if self.kd > 0 and self.previous_error is not None:
            derivative = (error - self.previous_error) / dt
        self.previous_error = error
        return self.kp * error + self.ki * self.integral + self.kd * derivative

    def reset(self) -> None:
        """Forget the integral and derivative history."""
        self.integral = 0.0
        self.previous_error = None

    def __repr__(self) -> str:
        return f"<PIDSmoother kp={self.kp:g} ki={self.ki:g} kd={self.kd:g}>"


class CounterDeltas:
    """Per-epoch deltas over monotonically growing counter dictionaries.

    Models accumulate counters (per-rank stall time, per-coupling bytes
    moved) that only ever grow; a controller wants the *increment* since its
    previous wake-up.  ``CounterDeltas`` snapshots named counter groups and
    returns the per-key increase on each :meth:`advance` call.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[str, Dict[str, float]] = {}

    def advance(self, group: str, counters: Mapping[str, float]) -> Dict[str, float]:
        """Return the per-key increase of ``counters`` since the last call.

        Keys absent from the previous snapshot are treated as starting at 0;
        keys that disappeared are dropped.  The snapshot for ``group`` is
        updated to the current values.
        """
        previous = self._snapshots.get(group, {})
        current = {key: float(value) for key, value in counters.items()}
        self._snapshots[group] = current
        return {key: value - previous.get(key, 0.0) for key, value in current.items()}

    def peek(self, group: str) -> Dict[str, float]:
        """The last snapshot taken for ``group`` (empty if never advanced)."""
        return dict(self._snapshots.get(group, {}))
