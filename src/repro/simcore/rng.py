"""Reproducible named random-number streams.

Every stochastic element of the cluster model (compute-time jitter, file-system
service-time variation, network background load) draws from its own named
stream so that adding randomness to one subsystem never perturbs another — a
standard technique for variance reduction and reproducibility in simulation
studies.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent, deterministically seeded NumPy generators."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The stream's seed is derived from the registry seed and the name via
        ``SeedSequence.spawn``-style hashing, so streams are independent and
        stable across runs and across the order in which they are requested.
        """
        if name not in self._streams:
            ss = np.random.SeedSequence([self._seed, _stable_hash(name)])
            self._streams[name] = np.random.default_rng(ss)
        return self._streams[name]

    def jitter(self, name: str, mean: float, cv: float) -> float:
        """Draw one lognormal sample with the given mean and coefficient of variation.

        A convenience used by cost models: ``cv=0`` returns ``mean`` exactly
        (fully deterministic), otherwise a lognormal with the requested mean
        and relative spread is sampled from stream ``name``.
        """
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if cv < 0:
            raise ValueError("cv must be non-negative")
        if mean == 0.0 or cv == 0.0:
            return float(mean)
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean) - 0.5 * sigma2
        return float(self.stream(name).lognormal(mean=mu, sigma=np.sqrt(sigma2)))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)


def _stable_hash(name: str) -> int:
    """A process-invariant 64-bit hash of ``name`` (Python's ``hash`` is salted)."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h
