"""Synchronisation primitives built on the event kernel.

These model the synchronisation mechanisms the paper's Section 3 identifies as
performance bottlenecks in the baseline transports (reader/writer locks in
DataSpaces/DIMES, global barriers in Decaf and Flexpath) and the condition
variables Zipper's own work-stealing writer thread uses (Algorithm 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.simcore.errors import SimulationError
from repro.simcore.events import Event

if TYPE_CHECKING:
    from repro.simcore.engine import Environment

__all__ = ["Mutex", "Semaphore", "SimBarrier", "ConditionVar", "OneShotSignal"]


class Mutex:
    """A non-reentrant mutual-exclusion lock with FIFO waiters.

    ``acquire()`` returns an event that triggers when the lock is granted; the
    owner must call ``release()`` exactly once.  Ownership is tracked by an
    opaque token (the acquire event) so misuse is detected.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._owner: Optional[Event] = None
        self._waiters: List[Event] = []
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._owner is not None

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = Event(self.env)
        if self._owner is None:
            self._owner = ev
            self.acquisitions += 1
            ev.succeed(ev)
        else:
            self.contended_acquisitions += 1
            self._waiters.append(ev)
        return ev

    def release(self, token: Optional[Event] = None) -> None:
        if self._owner is None:
            raise SimulationError("release of an unlocked Mutex")
        if token is not None and token is not self._owner:
            raise SimulationError("release by a non-owner")
        if self._waiters:
            nxt = self._waiters.pop(0)
            self._owner = nxt
            self.acquisitions += 1
            nxt.succeed(nxt)
        else:
            self._owner = None


class Semaphore:
    """A counting semaphore with FIFO waiters."""

    def __init__(self, env: "Environment", value: int = 1):
        if value < 0:
            raise SimulationError("initial value must be non-negative")
        self.env = env
        self._value = value
        self._waiters: List[Event] = []

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = Event(self.env)
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._value += 1


class SimBarrier:
    """A reusable barrier over ``parties`` simulated processes.

    Models the collective barriers (``MPI_Barrier``, Decaf's per-step
    ``MPI_Waitall`` interlock) whose cost the paper measures.  Each call to
    :meth:`wait` returns an event that triggers once all parties of the current
    generation have arrived.
    """

    def __init__(self, env: "Environment", parties: int):
        if parties <= 0:
            raise SimulationError("parties must be positive")
        self.env = env
        self.parties = parties
        self._arrived: List[Event] = []
        self.generations_completed = 0

    @property
    def waiting(self) -> int:
        return len(self._arrived)

    def wait(self) -> Event:
        ev = Event(self.env)
        self._arrived.append(ev)
        if len(self._arrived) >= self.parties:
            generation, self._arrived = self._arrived, []
            self.generations_completed += 1
            for waiter in generation:
                waiter.succeed(self.generations_completed)
        return ev


class ConditionVar:
    """A condition variable: processes wait for an explicit notify.

    Unlike a POSIX condition variable there is no associated mutex; the model
    code re-checks its predicate after being woken, exactly as Algorithm 1 in
    the paper does ("wait on a condition variable and release the lock").
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._waiters: List[Event] = []
        self.notifications = 0

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev

    def notify(self, n: int = 1, value: Any = None) -> int:
        """Wake up to ``n`` waiters; returns the number actually woken."""
        woken = 0
        while self._waiters and woken < n:
            self._waiters.pop(0).succeed(value)
            woken += 1
        self.notifications += woken
        return woken

    def notify_all(self, value: Any = None) -> int:
        return self.notify(len(self._waiters), value)


class OneShotSignal:
    """A latch that is set once and releases every past and future waiter.

    Used to model "end of stream" notifications (e.g. the producer application
    telling the Zipper consumer runtime that no further blocks will arrive).
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._set = False
        self._value: Any = None
        self._waiters: List[Event] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        if self._set:
            return
        self._set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)

    def wait(self) -> Event:
        ev = Event(self.env)
        if self._set:
            ev.succeed(self._value)
        else:
            self._waiters.append(ev)
        return ev
