"""Statistics collection helpers for simulation models.

Two collectors cover the needs of the cluster and runtime models:

* :class:`TallyMonitor` — running statistics over discrete observations
  (message sizes, per-block service times, stall durations).
* :class:`TimeSeriesMonitor` — a piecewise-constant time series with
  time-weighted statistics (queue lengths, buffer occupancy, link utilisation).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

__all__ = ["TallyMonitor", "TimeSeriesMonitor"]


class TallyMonitor:
    """Streaming mean/variance/min/max over scalar observations (Welford)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.total = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        minimum = self.minimum
        maximum = self.maximum
        if minimum is None or maximum is None:
            self.minimum = self.maximum = value
        else:
            if value < minimum:
                self.minimum = value
            if value > maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "TallyMonitor") -> "TallyMonitor":
        """Return a new monitor combining this one with ``other``."""
        merged = TallyMonitor(self.name or other.name)
        for mon in (self, other):
            if mon.count == 0:
                continue
            if merged.count == 0:
                merged.count = mon.count
                merged.total = mon.total
                merged._mean = mon._mean
                merged._m2 = mon._m2
                merged.minimum = mon.minimum
                merged.maximum = mon.maximum
                continue
            n1, n2 = merged.count, mon.count
            delta = mon._mean - merged._mean
            total_n = n1 + n2
            merged._mean += delta * n2 / total_n
            merged._m2 += mon._m2 + delta * delta * n1 * n2 / total_n
            merged.count = total_n
            merged.total += mon.total
            # Both sides have count > 0 here, so their extrema are set.
            if merged.minimum is not None and mon.minimum is not None:
                merged.minimum = min(merged.minimum, mon.minimum)
            if merged.maximum is not None and mon.maximum is not None:
                merged.maximum = max(merged.maximum, mon.maximum)
        return merged

    def __repr__(self) -> str:
        return (
            f"<TallyMonitor {self.name!r} n={self.count} mean={self.mean:.6g} "
            f"min={self.minimum} max={self.maximum}>"
        )


class TimeSeriesMonitor:
    """A piecewise-constant level over time with time-weighted statistics."""

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0):
        self.name = name
        self._level = float(initial)
        self._last_time = float(start_time)
        self._start_time = float(start_time)
        self._weighted_sum = 0.0
        self._weighted_sq_sum = 0.0
        self.maximum = float(initial)
        self.minimum = float(initial)
        self.samples: List[Tuple[float, float]] = [(float(start_time), float(initial))]

    @property
    def level(self) -> float:
        return self._level

    def record(self, time: float, level: float) -> None:
        """Set the level to ``level`` at simulation time ``time``."""
        time = float(time)
        if time < self._last_time:
            raise ValueError("time must be non-decreasing")
        dt = time - self._last_time
        self._weighted_sum += self._level * dt
        self._weighted_sq_sum += self._level * self._level * dt
        self._level = float(level)
        self._last_time = time
        self.maximum = max(self.maximum, self._level)
        self.minimum = min(self.minimum, self._level)
        self.samples.append((time, self._level))

    def increment(self, time: float, delta: float = 1.0) -> None:
        self.record(time, self._level + delta)

    def decrement(self, time: float, delta: float = 1.0) -> None:
        self.record(time, self._level - delta)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean level from the start until ``until`` (or last record)."""
        end = self._last_time if until is None else float(until)
        if end < self._last_time:
            raise ValueError("until must not precede the last recorded time")
        span = end - self._start_time
        if span <= 0:
            return self._level
        extra = self._level * (end - self._last_time)
        return (self._weighted_sum + extra) / span

    def __repr__(self) -> str:
        return (
            f"<TimeSeriesMonitor {self.name!r} level={self._level:.6g} "
            f"max={self.maximum:.6g}>"
        )
