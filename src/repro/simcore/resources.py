"""Queueing resources for the discrete-event kernel.

Three families of resources are provided, mirroring what the cluster and
runtime models need:

* :class:`Resource` / :class:`PriorityResource` — a counted set of slots that
  processes acquire and release (used for NIC send engines, file-system
  object-storage-target service slots, staging-server request handlers, ...).
* :class:`Store` / :class:`FilterStore` — a buffer of Python objects with an
  optional capacity (used for message queues, the Zipper producer/consumer
  buffers in the simulated runtime, and mailboxes of the simulated MPI layer).
* :class:`Container` — a continuous quantity with puts and gets (used for
  memory-pool accounting).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.simcore.errors import SimulationError
from repro.simcore.events import Event

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityResource",
    "StorePut",
    "StoreGet",
    "Store",
    "FilterStore",
    "Container",
]


class Request(Event):
    """Event returned by :meth:`Resource.request`; triggers on acquisition."""

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if self.triggered:
            raise SimulationError("cannot cancel a granted request; release it")
        try:
            self.resource._waiters.remove(self)
        except ValueError:
            pass

    # Support `with resource.request() as req:` inside process generators for
    # readability; the release still has to be explicit via resource.release().
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.triggered and self.usage_since is not None:
            self.resource.release(self)


class Release(Event):
    """Event returned by :meth:`Resource.release`; triggers immediately."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)
        self.succeed()


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self._waiters: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        """Return a previously granted slot to the pool."""
        return Release(self, request)

    # -- internal ---------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self._insert_waiter(request)

    def _insert_waiter(self, request: Request) -> None:
        self._waiters.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed()

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise SimulationError(
                "released a request that does not hold the resource"
            ) from None
        while self._waiters and len(self.users) < self._capacity:
            nxt = self._pop_waiter()
            self._grant(nxt)

    def _pop_waiter(self) -> Request:
        return self._waiters.pop(0)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-value first."""

    def _insert_waiter(self, request: Request) -> None:
        # Stable insert: equal priorities keep FIFO order.
        idx = len(self._waiters)
        for i, waiting in enumerate(self._waiters):
            if request.priority < waiting.priority:
                idx = i
                break
        self._waiters.insert(idx, request)


class StorePut(Event):
    """Event returned by :meth:`Store.put`; triggers once the item is stored."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; its value is the retrieved item."""

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter_fn = filter_fn
        store._get_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw a pending get (used by timeout races in the models)."""
        if self.triggered:
            raise SimulationError("cannot cancel a completed get")
        # The store holds a reference in _get_waiters; mark as cancelled so the
        # dispatcher skips it.
        self.filter_fn = _never_match


def _never_match(_item: Any) -> bool:
    return False


class Store:
    """A FIFO buffer of arbitrary items with optional bounded capacity."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the event triggers when capacity permits storage."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the oldest item (waits if the store is empty)."""
        return StoreGet(self)

    # -- internal ---------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._put_waiters and len(self.items) < self._capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve gets while items match.
            i = 0
            while i < len(self._get_waiters):
                get = self._get_waiters[i]
                matched = self._match(get)
                if matched is not None:
                    self._get_waiters.pop(i)
                    get.succeed(matched)
                    progress = True
                else:
                    i += 1

    def _match(self, get: StoreGet) -> Optional[Any]:
        if get.filter_fn is None:
            if self.items:
                return self.items.pop(0)
            return None
        for idx, item in enumerate(self.items):
            if get.filter_fn(item):
                return self.items.pop(idx)
        return None


class FilterStore(Store):
    """A :class:`Store` whose getters may select items with a predicate."""

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        return StoreGet(self, filter_fn)


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A continuous quantity (e.g. bytes of buffer memory) with blocking put/get."""

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must lie within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount`` (waits while it would exceed capacity)."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount`` (waits until that much is available)."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if get.amount <= self._level:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progress = True
