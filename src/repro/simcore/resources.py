"""Queueing resources for the discrete-event kernel.

Three families of resources are provided, mirroring what the cluster and
runtime models need:

* :class:`Resource` / :class:`PriorityResource` — a counted set of slots that
  processes acquire and release (used for NIC send engines, file-system
  object-storage-target service slots, staging-server request handlers, ...).
* :class:`Store` / :class:`FilterStore` — a buffer of Python objects with an
  optional capacity (used for message queues, the Zipper producer/consumer
  buffers in the simulated runtime, and mailboxes of the simulated MPI layer).
* :class:`Container` — a continuous quantity with puts and gets (used for
  memory-pool accounting).
"""

from __future__ import annotations

from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Type

from repro.simcore.errors import SimulationError
from repro.simcore.events import Event, PENDING

if TYPE_CHECKING:
    from repro.simcore.engine import Environment

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityResource",
    "StorePut",
    "StoreGet",
    "Store",
    "FilterStore",
    "Container",
]


class Request(Event):
    """Event returned by :meth:`Resource.request`; triggers on acquisition."""

    __slots__ = ("resource", "priority", "usage_since")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        # Inlined Event.__init__ (one request per core grant, NIC slot and
        # staging handler — a hot allocation path).
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        self.priority = priority
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if self.triggered:
            raise SimulationError("cannot cancel a granted request; release it")
        try:
            self.resource._waiters.remove(self)
        except ValueError:
            pass

    # Support `with resource.request() as req:` inside process generators for
    # readability; the release still has to be explicit via resource.release().
    def __enter__(self) -> "Request":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self.triggered and self.usage_since is not None:
            self.resource.release(self)


class Release(Event):
    """Event returned by :meth:`Resource.release`; completed in place.

    The release's observable effect — removing the holder and granting
    waiters — happens synchronously in ``_do_release`` before the event
    object is even visible to the caller, and no model code ever waits on a
    ``Release``.  The event is therefore completed immediately instead of
    taking a trip through the queue; :meth:`Environment.complete` keeps the
    processed-event count identical to the queued behaviour.

    Under ``Environment(pool_events=True)`` releases recycle through a free
    list at their creation site: once ``complete`` returns, a release's
    observable state is a constant (processed, ok, value ``None``), so
    aliasing between a recycled object and a caller that still holds one is
    unobservable.  The F501 escape analysis certifies that no call site in
    the model tree stores a release anyway.
    """

    __slots__ = ("resource", "request", "_generation")

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)
        self._ok = True
        self._value = None
        self.env.complete(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self._waiters: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        """Return a previously granted slot to the pool."""
        env = self.env
        if env._pool_events:
            pool = env._release_pool
            if pool:
                release = pool.pop()
                # Re-arm the recycled event (state reset mirrors
                # Release.__init__ + the Event base init).
                release.callbacks = []
                release._defused = False
                release.resource = self
                release.request = request
                self._do_release(release)
                release._ok = True
                release._value = None
                env.complete(release)
            else:
                release = Release(self, request)
            env._recycle_release(release)
            return release
        return Release(self, request)

    # -- internal ---------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            # Immediate grant, completed in place when provably safe (see
            # Environment.trigger_inplace).  Grants to *waiters* in
            # _do_release always take the queue: the waiting process has a
            # resume callback attached.
            self.users.append(request)
            env = self.env
            request.usage_since = env._now
            env.trigger_inplace(request)
        else:
            self._insert_waiter(request)

    def _insert_waiter(self, request: Request) -> None:
        self._waiters.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed()

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise SimulationError(
                "released a request that does not hold the resource"
            ) from None
        while self._waiters and len(self.users) < self._capacity:
            nxt = self._pop_waiter()
            self._grant(nxt)

    def _pop_waiter(self) -> Request:
        return self._waiters.pop(0)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-value first."""

    def _insert_waiter(self, request: Request) -> None:
        # Stable insert: equal priorities keep FIFO order.
        idx = len(self._waiters)
        for i, waiting in enumerate(self._waiters):
            if request.priority < waiting.priority:
                idx = i
                break
        self._waiters.insert(idx, request)


class StorePut(Event):
    """Event returned by :meth:`Store.put`; triggers once the item is stored.

    Recycled through the environment's free list under
    ``Environment(pool_events=True)`` — the F501-certified contract matches
    :class:`~repro.simcore.events.PooledTimeout`: yield it immediately from
    exactly one process (or discard it unyielded) and never store or share
    it; it serves the next ``put`` the moment it has been consumed.
    """

    __slots__ = ("item", "_generation")

    def __init__(self, store: "Store", item: Any):
        # Inlined Event.__init__ (one put per block/message — hot path).
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.item = item
        store._put(self)


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; its value is the retrieved item.

    Recycled under ``Environment(pool_events=True)`` with the same
    yield-immediately contract as :class:`StorePut`.
    """

    __slots__ = ("filter_fn", "_generation")

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None):
        # Inlined Event.__init__ (one get per block/message — hot path).
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.filter_fn = filter_fn
        store._get(self)

    def cancel(self) -> None:
        """Withdraw a pending get (used by timeout races in the models)."""
        if self.triggered:
            raise SimulationError("cannot cancel a completed get")
        # The store holds a reference in _get_waiters; mark as cancelled so the
        # dispatcher skips it.
        self.filter_fn = _never_match


def _never_match(_item: Any) -> bool:
    return False


class Store:
    """A FIFO buffer of arbitrary items with optional bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the event triggers when capacity permits storage."""
        env = self.env
        if env._pool_events:
            pool = env._put_pool
            if pool:
                put = pool.pop()
                # Re-arm the recycled event (mirrors StorePut.__init__).
                put.callbacks = []
                put._value = PENDING
                put._ok = None
                put._defused = False
                put.item = item
                self._put(put)
                return put
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the oldest item (waits if the store is empty)."""
        env = self.env
        if env._pool_events:
            pool = env._get_pool
            if pool:
                return self._rearm_get(pool.pop(), None)
        return StoreGet(self)

    def _rearm_get(self, get: StoreGet, filter_fn: Optional[Callable[[Any], bool]]) -> StoreGet:
        """Reset a recycled get event and run it (mirrors StoreGet.__init__)."""
        get.callbacks = []
        get._value = PENDING
        get._ok = None
        get._defused = False
        get.filter_fn = filter_fn
        self._get(get)
        return get

    # -- internal ---------------------------------------------------------
    def _put(self, put: StorePut) -> None:
        """Admit one new put, fast-pathing the common uncontended case.

        Invariant kept by every mutation: a non-empty put-waiter list means
        the store is full, so a fresh put either lands immediately (store
        has room, no queue) or queues behind the earlier waiters.  The
        trigger order matches the generic dispatcher exactly — put first,
        then any gets it unblocks — so event ids are unchanged.  When the
        engine can prove the put's queue trip would be the immediate next
        pop, the event completes in place and the putter continues
        synchronously (see :meth:`Environment.trigger_inplace`).
        """
        items = self.items
        if not self._put_waiters and len(items) < self._capacity:
            items.append(put.item)
            put.env.trigger_inplace(put)
            if self._get_waiters:
                self._dispatch()
        else:
            self._put_waiters.append(put)
            self._dispatch()

    def _get(self, get: StoreGet) -> None:
        """Serve one new get, fast-pathing the plain-FIFO non-empty case.

        The fast path requires no earlier get waiters (for a plain store a
        non-empty waiter list implies an empty store, but a FilterStore may
        hold unmatched waiters alongside items — those always take the
        generic dispatcher).  Order matches the dispatcher: the get is
        served first, then any put its freed slot admits; the in-place
        completion shortcut follows the same proof as :meth:`_put`.
        """
        items = self.items
        if not self._get_waiters and items and get.filter_fn is None:
            get.env.trigger_inplace(get, items.pop(0))
            if self._put_waiters:
                self._dispatch()
        else:
            self._get_waiters.append(get)
            self._dispatch()

    def _dispatch(self) -> None:
        put_waiters = self._put_waiters
        get_waiters = self._get_waiters
        items = self.items
        capacity = self._capacity
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while put_waiters and len(items) < capacity:
                put = put_waiters.pop(0)
                items.append(put.item)
                put.succeed()
                progress = True
            # Serve gets while items match.
            i = 0
            while i < len(get_waiters):
                get = get_waiters[i]
                matched = self._match(get)
                if matched is not None:
                    get_waiters.pop(i)
                    get.succeed(matched)
                    progress = True
                else:
                    i += 1

    def _match(self, get: StoreGet) -> Optional[Any]:
        if get.filter_fn is None:
            if self.items:
                return self.items.pop(0)
            return None
        for idx, item in enumerate(self.items):
            if get.filter_fn(item):
                return self.items.pop(idx)
        return None


class FilterStore(Store):
    """A :class:`Store` whose getters may select items with a predicate."""

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        env = self.env
        if env._pool_events:
            pool = env._get_pool
            if pool:
                return self._rearm_get(pool.pop(), filter_fn)
        return StoreGet(self, filter_fn)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A continuous quantity (e.g. bytes of buffer memory) with blocking put/get."""

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must lie within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount`` (waits while it would exceed capacity)."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount`` (waits until that much is available)."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if get.amount <= self._level:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progress = True
