"""In-situ molecular dynamics analysis: Lennard-Jones melt + MSD via Zipper.

Run with::

    python examples/md_insitu.py

The paper's second real-world workflow at laptop scale: a Lennard-Jones
"melt" simulation (FCC lattice heated to T*=1.44) streams per-step particle
positions through the threaded Zipper runtime; a mean-squared-displacement
analysis consumes the position blocks and reports how far the atoms have
wandered from the initial lattice — the MSD curve should grow as the solid
melts.
"""

from __future__ import annotations

from repro.apps.analysis import MeanSquaredDisplacement
from repro.apps.md import LennardJonesMD
from repro.core import BlockId, ZipperConfig, zip_applications

STEPS = 40
OUTPUT_EVERY = 2
ATOMS_PER_BLOCK = 64


def main() -> None:
    md = LennardJonesMD(cells_per_side=3, temperature=1.44, dt=0.004, seed=7)
    msd = MeanSquaredDisplacement(md.initial_positions, box_length=md.box_length)

    def produce(writer) -> int:
        blocks = 0
        for step in range(STEPS):
            state = md.step()
            if (step + 1) % OUTPUT_EVERY:
                continue
            positions = state.positions
            for index, start in enumerate(range(0, positions.shape[0], ATOMS_PER_BLOCK)):
                chunk = positions[start : start + ATOMS_PER_BLOCK]
                writer.write(
                    BlockId(step=step, source_rank=0, block_index=index, offset=start),
                    chunk,
                    kind="positions",
                )
                blocks += 1
        return blocks

    def analyze(reader) -> int:
        analysed = 0
        for block in reader.blocks():
            msd.update(block.block_id.step, block.data, offset=block.block_id.offset)
            analysed += 1
        return analysed

    config = ZipperConfig(block_size=ATOMS_PER_BLOCK * 3 * 8, producer_buffer_blocks=16, high_water_mark=12)
    result = zip_applications(produce, analyze, config)

    curve = msd.curve()
    print("In-situ MSD analysis of a Lennard-Jones melt")
    print(f"  atoms                  : {md.n_atoms} (box length {md.box_length:.3f})")
    print(f"  blocks produced/analyzed: {result.blocks_produced} / {result.consumer_result}")
    print(f"  end-to-end time        : {result.end_to_end_time:.3f} s")
    print("  MSD curve (step -> <r^2>):")
    for step, value in list(curve.items())[:: max(1, len(curve) // 8)]:
        print(f"    step {step:4d} : {value:8.4f}")
    print(f"  monotonically melting  : {msd.is_monotonic(tolerance=0.05)}")


if __name__ == "__main__":
    main()
