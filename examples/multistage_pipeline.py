"""Multi-stage pipelines through the declarative Stage/Coupling API.

Run with::

    PYTHONPATH=src python examples/multistage_pipeline.py

Two workflows the old two-application runner could not express:

* a three-stage **chain** — CFD simulation → n-th moment analysis →
  visualization — where the sim→analysis coupling streams fine-grain blocks
  through Zipper while the (16x smaller) analysis→viz coupling rides DIMES;
* a **fan-out** — one simulation feeding a statistics analysis and an MSD
  analysis concurrently over independent couplings with independent
  transports.

Both are simulated end-to-end on the modelled Bridges cluster and report
per-stage breakdowns and per-coupling data channels.
"""

from __future__ import annotations

from repro.bench.experiments import pipeline_chain, pipeline_fanout
from repro.workflow import run_pipeline

STEPS = 6
TOTAL_CORES = 384


def show(title: str, pipeline) -> None:
    result = run_pipeline(pipeline)
    couplings = ", ".join(c.name for c in pipeline.couplings)
    print(f"{title} ({couplings})")
    print(f"  end-to-end      : {result.end_to_end_time:.3f} s")
    print(f"  simulation-only : {result.simulation_only_time:.3f} s "
          f"(x{result.slowdown_vs_simulation:.2f})")
    print(result.stage_summary())
    print()


def main() -> None:
    show("Three-stage chain", pipeline_chain(total_cores=TOTAL_CORES, steps=STEPS))
    show(
        "Fan-out to two analyses",
        pipeline_fanout(total_cores=TOTAL_CORES, steps=STEPS),
    )


if __name__ == "__main__":
    main()
