"""Scalability study on the simulated cluster: Zipper vs the baseline transports.

Run with::

    python examples/scalability_study.py            # serial
    REPRO_SWEEP_WORKERS=4 python examples/scalability_study.py

This example exercises the *simulated distributed* side of the library (the
cluster model, the simulated MPI layer, the baseline transports and the Zipper
transport) rather than the threaded runtime.  It reproduces, at reduced step
counts, the structure of the paper's Figures 16 and 18: weak-scaling the CFD
and LAMMPS workflows on a Stampede2-like machine from 204 to 13,056 cores and
comparing the end-to-end time of Zipper, Decaf, Flexpath and MPI-IO against
the simulation-only lower bound.

The scenario grid is declared with :class:`repro.sweep.ParamGrid` and executed
through :class:`repro.sweep.SweepRunner`, which fans the independent runs out
over ``REPRO_SWEEP_WORKERS`` processes (serial by default).
"""

from __future__ import annotations

import os

from repro.bench import format_table
from repro.apps.costs import cfd_workload, lammps_workload
from repro.cluster.presets import stampede2
from repro.sweep import ParamGrid, SweepRunner
from repro.workflow import WorkflowConfig

CORE_COUNTS = (204, 1632, 6528, 13056)
TRANSPORTS = ("none", "zipper", "decaf", "flexpath", "mpiio")
STEPS = 15


def study(workload_factory, name: str, workers: int) -> None:
    grid = ParamGrid(
        WorkflowConfig(
            workload=workload_factory(steps=STEPS),
            cluster=stampede2(),
            total_cores=CORE_COUNTS[0],
            representative_sim_ranks=8,
            steps=STEPS,
        ),
        axes=[("total_cores", CORE_COUNTS), ("transport", TRANSPORTS)],
        label="{total_cores}/{transport}",
    )
    results = SweepRunner(workers=workers, trace=False).run_labelled(grid)
    rows = []
    for cores in CORE_COUNTS:
        row = [cores]
        for transport in TRANSPORTS:
            result = results[f"{cores}/{transport}"]
            row.append("FAIL" if result.failed else round(result.end_to_end_time, 1))
        rows.append(row)
    headers = ["cores"] + ["simulation-only" if t == "none" else t for t in TRANSPORTS]
    print(format_table(headers, rows, title=f"{name} weak scaling on Stampede2 ({STEPS} steps)"))
    print()


def main() -> None:
    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
    study(cfd_workload, "CFD (lattice Boltzmann + n-th moment)", workers)
    study(lammps_workload, "LAMMPS (Lennard-Jones melt + MSD)", workers)
    print(
        "Zipper tracks the simulation-only lower bound at every scale; Decaf's\n"
        "CFD runs abort with the integer-overflow fault at 6,528+ cores, exactly\n"
        "as reported in the paper."
    )


if __name__ == "__main__":
    main()
