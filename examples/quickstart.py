"""Quickstart: couple a producer with an analysis through the threaded Zipper runtime.

Run with::

    python examples/quickstart.py

A synthetic O(n log n) "simulation" produces fine-grain data blocks; a
streaming standard-variance analysis consumes them as they become available.
Everything runs on real threads inside this process: the producer buffer, the
sender thread, the work-stealing writer thread (spilling to a temporary
directory when the message path is throttled) and the consumer's receiver /
reader threads — the same architecture the paper deploys across an HPC system.
"""

from __future__ import annotations

from repro.apps.analysis import StreamingMoments
from repro.apps.synthetic import SyntheticProducer
from repro.core import BlockId, ZipperConfig, zip_applications

STEPS = 20
BLOCKS_PER_STEP = 4
ELEMENTS_PER_BLOCK = 32_768  # 256 KiB of float64 per block


def produce(writer) -> int:
    """The simulation side: generate blocks and hand them to Zipper.write()."""
    producer = SyntheticProducer("O(nlogn)", elements=ELEMENTS_PER_BLOCK, seed=42)
    blocks = 0
    for step in range(STEPS):
        for index in range(BLOCKS_PER_STEP):
            data = producer.produce_block(step, index)
            writer.write(BlockId(step=step, source_rank=0, block_index=index), data)
            blocks += 1
    return blocks


def analyze(reader) -> StreamingMoments:
    """The analysis side: consume blocks as they arrive (data-driven)."""
    moments = StreamingMoments(max_order=4)
    for block in reader.blocks():
        moments.update(block.data)
    return moments


def main() -> None:
    config = ZipperConfig(
        block_size=ELEMENTS_PER_BLOCK * 8,
        producer_buffer_blocks=16,
        high_water_mark=12,
        # Throttle the in-memory message path to ~30 MB/s so the dual-channel
        # work stealing actually has something to do on a laptop.
        network_bandwidth=30e6,
    )
    result = zip_applications(produce, analyze, config)
    moments = result.consumer_result

    print("Zipper quickstart")
    print(f"  blocks produced        : {result.blocks_produced}")
    print(f"  blocks analysed        : {moments.blocks_consumed}")
    print(f"  blocks stolen (file)   : {result.blocks_stolen} ({100 * result.steal_fraction:.1f}%)")
    print(f"  producer stall time    : {result.stall_time:.3f} s")
    print(f"  end-to-end time        : {result.end_to_end_time:.3f} s")
    print(f"  streamed variance      : {moments.variance:.4f}")
    print(f"  4th moment             : {moments.moment(4):.4f}")


if __name__ == "__main__":
    main()
