"""In-situ CFD analysis: lattice-Boltzmann channel flow + turbulence moments via Zipper.

Run with::

    python examples/cfd_insitu.py

This is the paper's first real-world workflow at laptop scale: a D2Q9
lattice-Boltzmann channel-flow simulation produces a velocity field every
time step; the field is split into fine-grain blocks and pushed through the
threaded Zipper runtime (Preserve mode, so every block is also persisted); a
streaming n-th-moment turbulence analysis consumes the blocks as they arrive.
At the end the script compares the streamed moments with a direct offline
computation and reports where the preserved blocks were written.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.analysis import StreamingMoments, velocity_moments
from repro.apps.lbm import LatticeBoltzmannD2Q9
from repro.core import BlockId, ZipperConfig, zip_applications

NX, NY = 96, 48
STEPS = 60
OUTPUT_EVERY = 2
BLOCK_ELEMENTS = 2048


def main() -> None:
    collected = []

    def produce(writer) -> int:
        solver = LatticeBoltzmannD2Q9(nx=NX, ny=NY, tau=0.8, body_force=2e-5)
        blocks = 0
        for step in range(STEPS):
            state = solver.step()
            if (step + 1) % OUTPUT_EVERY:
                continue
            field = np.ascontiguousarray(state.velocity_x).reshape(-1)
            collected.append(field.copy())
            for index, start in enumerate(range(0, field.size, BLOCK_ELEMENTS)):
                writer.write(
                    BlockId(step=step, source_rank=0, block_index=index, offset=start),
                    field[start : start + BLOCK_ELEMENTS],
                )
                blocks += 1
        return blocks

    def analyze(reader) -> StreamingMoments:
        moments = StreamingMoments(max_order=4)
        for block in reader.blocks():
            moments.update(block.data)
        return moments

    with tempfile.TemporaryDirectory(prefix="zipper-cfd-") as spill:
        config = ZipperConfig(
            block_size=BLOCK_ELEMENTS * 8,
            mode="preserve",
            spill_dir=Path(spill),
            producer_buffer_blocks=32,
            high_water_mark=24,
        )
        result = zip_applications(produce, analyze, config)
        preserved = sorted(Path(spill, "preserved").glob("*.npy"))

        streamed = result.consumer_result
        offline = velocity_moments(np.concatenate(collected), max_order=4)

        print("In-situ CFD turbulence analysis (D2Q9 channel flow)")
        print(f"  lattice                 : {NX} x {NY}, {STEPS} steps, output every {OUTPUT_EVERY}")
        print(f"  blocks produced/analyzed: {result.blocks_produced} / {streamed.blocks_consumed}")
        print(f"  blocks preserved        : {len(preserved)}")
        print(f"  end-to-end time         : {result.end_to_end_time:.3f} s")
        print("  velocity moments (streamed vs offline):")
        for order in range(1, 5):
            print(
                f"    E[u^{order}] = {streamed.moment(order):+.6e}   offline {offline[order]:+.6e}"
            )
        agreement = abs(streamed.moment(4) - offline[4]) <= 1e-12 + 1e-9 * abs(offline[4])
        print(f"  streamed == offline     : {agreement}")


if __name__ == "__main__":
    main()
