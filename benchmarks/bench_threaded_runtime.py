"""Micro-benchmarks of the real (threaded) Zipper runtime and the numerical kernels.

Unlike the figure benches (which drive the cluster simulator), these measure
actual wall-clock of the library's hot paths with ``pytest-benchmark``:

* end-to-end throughput of the threaded Zipper runtime coupling a producer and
  a consumer through the in-memory message channel;
* the same with the dual-channel (spill-to-disk) path forced on;
* one time step of the lattice-Boltzmann solver and of the Lennard-Jones MD
  mini-app;
* the streaming n-th-moment analysis kernel.
"""

from __future__ import annotations

import numpy as np

from repro.apps.analysis import StreamingMoments
from repro.apps.lbm import LatticeBoltzmannD2Q9
from repro.apps.md import LennardJonesMD
from repro.core import BlockId, ZipperConfig, zip_applications


def _run_zipper_session(blocks: int, elements: int, config: ZipperConfig):
    data = np.random.default_rng(0).standard_normal(elements)

    def produce(writer):
        for i in range(blocks):
            writer.write(BlockId(step=i, source_rank=0, block_index=0), data)

    def analyze(reader):
        moments = StreamingMoments(max_order=2)
        for block in reader.blocks():
            moments.update(block.data)
        return moments.blocks_consumed

    result = zip_applications(produce, analyze, config)
    assert result.consumer_result == blocks
    return result


def test_threaded_zipper_memory_path(benchmark):
    config = ZipperConfig(block_size=64 * 1024, producer_buffer_blocks=32, high_water_mark=28)
    result = benchmark.pedantic(
        _run_zipper_session, args=(64, 8192, config), rounds=3, iterations=1
    )
    assert result.blocks_produced == 64


def test_threaded_zipper_dual_channel(benchmark, tmp_path):
    # Throttle the message path so the work-stealing writer engages.
    config = ZipperConfig(
        block_size=64 * 1024,
        producer_buffer_blocks=8,
        high_water_mark=4,
        network_bandwidth=20e6,
        spill_dir=tmp_path,
    )
    result = benchmark.pedantic(
        _run_zipper_session, args=(48, 8192, config), rounds=1, iterations=1
    )
    assert result.blocks_stolen > 0


def test_lbm_step(benchmark):
    solver = LatticeBoltzmannD2Q9(nx=128, ny=64)
    benchmark(solver.step)
    assert solver.step_count > 0


def test_lennard_jones_step(benchmark):
    md = LennardJonesMD(cells_per_side=3)
    benchmark(md.step)
    assert md.step_count > 0


def test_streaming_moments_update(benchmark):
    moments = StreamingMoments(max_order=4)
    data = np.random.default_rng(1).standard_normal(1 << 18)
    benchmark(moments.update, data)
    assert moments.count > 0
