"""Fault injection under checkpoint/restart: the two fault-tolerance figures.

Regenerates the fault layer's evaluation on the bursty-analytics pipeline.
Every scenario replays the *same* seeded :class:`~repro.faults.plan.FaultPlan`
(two simulation-node crashes plus straggler / link-degradation /
transport-restart windows), so the checkpoint-interval and static-vs-elastic
comparisons differ only in how the pipeline absorbs identical faults.  The
two figures:

* **time-to-recover vs checkpoint interval** — a crashed rank recomputes the
  steps lost since its last checkpoint, so the per-crash recovery time
  (``recover.time - inject.time`` on the fault timeline) grows with the
  interval; frequent checkpoints pin it near the plan's fixed respawn cost;
* **elastic vs static makespan under faults** — the elastic controller
  reroutes cores around degraded nodes and refills crashed assist ranks, so
  every elastic run beats its static twin on the same fault schedule.
"""

from __future__ import annotations

from conftest import bench_steps, bench_workers

from repro.bench import format_table
from repro.bench.experiments import fault_recovery_configs
from repro.sweep import run_labelled


def run_faults(steps: int):
    return run_labelled(fault_recovery_configs(steps=steps), workers=bench_workers())


def crash_recovery_times(result):
    """Per-crash recovery durations from one run's fault timeline.

    Crash inject/recover events pair up by (node, rank); the injector emits
    them in time order, so matching each recover to the oldest open inject
    of the same victim is exact.
    """
    open_crashes = {}
    durations = []
    for event in result.faults:
        if event.kind != "node_crash":
            continue
        victim = (event.detail.get("node"), event.detail.get("rank"))
        if event.action == "inject":
            open_crashes.setdefault(victim, []).append(event.time)
        else:
            durations.append(event.time - open_crashes[victim].pop(0))
    return durations


def test_time_to_recover_vs_checkpoint_interval(benchmark, report):
    steps = bench_steps(24)
    results = benchmark.pedantic(run_faults, args=(steps,), rounds=1, iterations=1)

    recovery = {}
    rows = []
    for label in sorted(results, key=lambda lab: int(lab.rsplit("-", 1)[1])):
        if not label.startswith("static/"):
            continue
        interval = int(label.rsplit("-", 1)[1])
        durations = crash_recovery_times(results[label])
        mean = sum(durations) / len(durations)
        recovery[interval] = mean
        rows.append([interval, len(durations), round(mean, 3), round(max(durations), 3)])
    report(
        format_table(
            ["checkpoint interval (steps)", "crashes", "mean recover (s)", "max recover (s)"],
            rows,
            title=(
                f"Time to recover vs checkpoint interval ({steps} steps): "
                "identical seeded crash schedule"
            ),
        )
    )

    # Losing at most `interval` steps per crash makes recovery time
    # non-decreasing in the interval, and strictly worse at the largest
    # interval than at per-step checkpointing.
    intervals = sorted(recovery)
    for small, large in zip(intervals, intervals[1:]):
        assert recovery[small] <= recovery[large]
    assert recovery[intervals[0]] < recovery[intervals[-1]]
    for results_of in results.values():
        assert not results_of.failed


def test_elastic_vs_static_under_faults(benchmark, report):
    steps = bench_steps(24)
    results = benchmark.pedantic(run_faults, args=(steps,), rounds=1, iterations=1)

    rows = []
    for label, result in sorted(results.items(), key=lambda kv: kv[1].end_to_end_time):
        rows.append(
            [
                label,
                result.end_to_end_time,
                len(result.faults),
                len(result.rebalances),
                "FAILED" if result.failed else "",
            ]
        )
    report(
        format_table(
            ["scenario", "end-to-end (s)", "fault events", "rebalances", "status"],
            rows,
            title=(
                f"Elastic vs static under faults ({steps} steps): same seeded "
                "fault plan for every scenario"
            ),
        )
    )

    # Every scenario sees the identical fault schedule, so the timelines
    # must agree in length; the elastic controller's rerouting then beats
    # the static split crash for crash.
    timeline_lengths = {len(r.faults) for r in results.values()}
    assert len(timeline_lengths) == 1
    best_static = min(
        r.end_to_end_time for label, r in results.items() if label.startswith("static/")
    )
    best_elastic = min(
        r.end_to_end_time for label, r in results.items() if label.startswith("elastic/")
    )
    assert best_elastic < best_static
