"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper: it runs
the corresponding workflow configurations on the cluster simulator (or the
threaded runtime), prints the same rows/series the paper reports, and records
the wall-clock of the regeneration itself through ``pytest-benchmark``.

Scale note: the benches default to fewer time steps / less data per rank than
the paper so the whole suite finishes in a few minutes on a laptop.  Set the
environment variable ``REPRO_BENCH_STEPS`` (and ``REPRO_BENCH_DATA_MIB``) to
larger values for a closer-to-paper run, and ``REPRO_BENCH_WORKERS`` to fan
the scenario grids out over that many worker processes.
"""

from __future__ import annotations

import os

import pytest

MiB = 1024 * 1024


def bench_steps(default: int = 20) -> int:
    """Number of workflow time steps used by the benches."""
    return int(os.environ.get("REPRO_BENCH_STEPS", default))


def bench_data_mib(default: int = 128) -> int:
    """Per-rank synthetic data volume (MiB) used by the benches."""
    return int(os.environ.get("REPRO_BENCH_DATA_MIB", default))


def bench_workers(default: int = 0) -> int:
    """Sweep-engine worker processes (0 = serial in-process)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", default))


@pytest.fixture(scope="session")
def report():
    """Print a block of text after the benchmark run (kept simple on purpose)."""

    def _print(text: str) -> None:
        print()
        print(text)

    return _print
