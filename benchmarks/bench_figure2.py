"""Figure 2 / Tables 1-2: CFD workflow end-to-end time under seven I/O transports.

Regenerates the Bridges experiment of Section 3: a lattice-Boltzmann CFD
simulation (256 simulation ranks, 128 analysis ranks, 16 MiB per rank per
step) coupled to the 4th-moment turbulence analysis through each of the seven
transport methods, compared against the simulation-only and analysis-only
reference bars.  The paper's headline observations to look for in the output:

* MPI-IO is the slowest and most variable method;
* native DataSpaces/DIMES beat their ADIOS-driven counterparts (by ~1.3x/1.5x
  in the paper);
* Decaf is the fastest baseline, followed by Flexpath;
* every baseline stays well above the simulation-only lower bound.
"""

from __future__ import annotations

from conftest import bench_steps, bench_workers

from repro.bench import format_table
from repro.bench.experiments import figure2_configs
from repro.sweep import run_labelled


def run_figure2(steps: int):
    return run_labelled(figure2_configs(steps=steps), workers=bench_workers())


def test_figure2_cfd_transport_comparison(benchmark, report):
    steps = bench_steps()
    results = benchmark.pedantic(run_figure2, args=(steps,), rounds=1, iterations=1)

    sim_only = results["none"].end_to_end_time
    rows = []
    for transport, result in sorted(results.items(), key=lambda kv: kv[1].end_to_end_time):
        rows.append(
            [
                transport,
                result.end_to_end_time,
                result.end_to_end_time / max(sim_only, 1e-9),
                result.breakdown.stall,
                "FAILED" if result.failed else "",
            ]
        )
    report(
        format_table(
            ["transport", "end-to-end (s)", "vs sim-only", "stall (s)", "status"],
            rows,
            title=(
                f"Figure 2 (scaled to {steps} steps): CFD workflow on Bridges, "
                "256 sim + 128 analysis ranks represented"
            ),
        )
    )

    # Shape assertions matching the paper's qualitative findings.
    assert results["zipper"].end_to_end_time <= min(
        results[t].end_to_end_time for t in results if t not in ("zipper", "none")
    )
    assert results["mpiio"].end_to_end_time == max(
        r.end_to_end_time for t, r in results.items() if t != "none"
    )
    assert results["decaf"].end_to_end_time < results["mpiio"].end_to_end_time
