"""Distributed-campaign overhead: coordinator + workers vs a plain sweep.

Runs the ``campaign`` suite of the continuous-benchmark harness — a small
figure2 grid executed through a real lease/heartbeat coordinator and two
local workers over localhost HTTP, then through a plain serial runner.
The suite itself asserts the tentpole guarantee (the campaign store's
canonical bytes equal the single-host run's; see ``docs/campaigns.md``)
and stamps the protocol overhead into the result's environment, which this
driver prints next to the committed ``BENCH_campaign.json`` baseline.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.bench.harness import bench_path, compare, load_result, run_suite


def test_campaign_overhead(benchmark, report):
    result = benchmark.pedantic(run_suite, args=("campaign",), rounds=1, iterations=1)
    assert result.failed_scenarios == 0
    assert result.events_processed > 0
    # run_campaign_suite raises outright when byte-identity is violated;
    # the stamp is belt and braces for the recorded history.
    assert result.environment["byte_identical"] == "true"

    previous = load_result(bench_path("campaign"))
    delta = compare(result, previous)
    rows = [
        [
            "this run",
            f"{result.events_per_sec:,.0f}",
            result.events_processed,
            f"{result.environment['overhead_pct']}%",
        ]
    ]
    if previous is not None:
        rows.append(
            [
                "committed baseline",
                f"{previous.events_per_sec:,.0f}",
                previous.events_processed,
                f"{previous.environment.get('overhead_pct', '?')}%",
            ]
        )
        rows.append(["speedup vs baseline", f"{delta['speedup']:.2f}x", "", ""])
        # The modelled-event count is machine-independent: a mismatch means
        # the grid changed without refreshing BENCH_campaign.json.
        assert result.events_processed == previous.events_processed
    report(
        format_table(
            ["measurement", "events/sec", "events_processed", "overhead vs serial"],
            rows,
            title="Campaign overhead (coordinator + 2 workers vs plain serial sweep)",
        )
    )
