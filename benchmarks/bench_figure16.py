"""Figure 16: CFD weak-scaling on Stampede2 (204 to 13,056 cores).

End-to-end time of the CFD workflow under MPI-IO, Flexpath, Decaf and Zipper,
compared to the simulation-only lower bound.  The paper's findings to check:

* Zipper stays almost equal to the simulation-only time at every scale;
* MPI-IO does not scale;
* Flexpath is far slower than everything else (socket path, many ranks/node);
* Decaf is the fastest baseline but crashes with an integer overflow at
  6,528+ cores for this workload (the bench records the failure, as the paper
  does, rather than a time).
"""

from __future__ import annotations

from conftest import bench_steps, bench_workers

from repro.bench import format_table
from repro.bench.experiments import SCALABILITY_CORE_COUNTS, figure16_configs
from repro.sweep import run_labelled


def run_figure16(steps: int):
    return run_labelled(figure16_configs(steps=steps), workers=bench_workers())


def test_figure16_cfd_weak_scaling(benchmark, report):
    steps = bench_steps()
    results = benchmark.pedantic(run_figure16, args=(steps,), rounds=1, iterations=1)

    transports = ("mpiio", "flexpath", "decaf", "zipper", "none")
    rows = []
    for cores in SCALABILITY_CORE_COUNTS:
        row = [cores]
        for transport in transports:
            result = results[f"cfd/{cores}/{transport}"]
            row.append("FAIL" if result.failed else round(result.end_to_end_time, 1))
        rows.append(row)
    report(
        format_table(
            ["cores"] + [t if t != "none" else "simulation-only" for t in transports],
            rows,
            title=f"Figure 16: CFD weak scaling on Stampede2 ({steps} steps)",
        )
    )

    for cores in SCALABILITY_CORE_COUNTS:
        zipper = results[f"cfd/{cores}/zipper"]
        sim_only = results[f"cfd/{cores}/none"]
        # Zipper stays close to the simulation-only lower bound at every scale.
        assert zipper.end_to_end_time <= sim_only.end_to_end_time * 1.45
        # Zipper beats every baseline that completed.
        for transport in ("mpiio", "flexpath", "decaf"):
            baseline = results[f"cfd/{cores}/{transport}"]
            if not baseline.failed:
                assert zipper.end_to_end_time < baseline.end_to_end_time
    # Decaf hits its integer overflow at 6,528 and 13,056 cores (CFD counts).
    assert results["cfd/6528/decaf"].failed
    assert results["cfd/13056/decaf"].failed
    assert not results["cfd/3264/decaf"].failed
    # MPI-IO scales worse than Decaf/Zipper.
    assert (
        results["cfd/3264/mpiio"].end_to_end_time
        > results["cfd/3264/decaf"].end_to_end_time
    )
