"""Figure 14: effect of the concurrent message+file transfer optimisation.

Weak-scaling runs of the three synthetic applications on Bridges (84 to 2,352
cores represented), comparing the message-passing-only Zipper configuration
against the concurrent (work-stealing) configuration.  The paper's findings to
look for:

* for the fast O(n) producer the wall-clock (simulation + stall) drops by
  double-digit percentages because the writer thread steals ~half the blocks;
* for O(n log n) the optimisation only helps at larger scales, where the
  network becomes congested and the producer buffer actually fills;
* for the compute-bound O(n^{3/2}) producer there is nothing to steal, so the
  concurrent method falls back to message-passing-only (never worse).
"""

from __future__ import annotations

from conftest import bench_data_mib, bench_workers

from repro.bench import format_table
from repro.bench.experiments import figure14_configs
from repro.sweep import run_labelled

MiB = 1024 * 1024

#: Trimmed core-count list so the default bench stays fast; set
#: REPRO_BENCH_DATA_MIB / edit here for the full sweep.
CORE_COUNTS = (84, 336, 2352)


def run_figure14(data_per_rank: int):
    return run_labelled(
        figure14_configs(data_per_rank=data_per_rank, core_counts=CORE_COUNTS),
        workers=bench_workers(),
    )


def test_figure14_concurrent_transfer(benchmark, report):
    data_per_rank = bench_data_mib() * MiB
    results = benchmark.pedantic(run_figure14, args=(data_per_rank,), rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        bd = result.breakdown
        rows.append(
            [
                label,
                bd.simulation,
                bd.stall,
                bd.simulation + bd.stall,
                bd.transfer,
                100.0 * result.steal_fraction,
            ]
        )
    report(
        format_table(
            ["config", "sim (s)", "stall (s)", "comp thread (s)", "sender thread (s)", "stolen (%)"],
            rows,
            title=f"Figure 14: message-passing-only vs concurrent transfer ({data_per_rank // MiB} MiB/rank)",
        )
    )

    def wallclock(label):
        bd = results[label].breakdown
        return bd.simulation + bd.stall

    for cores in CORE_COUNTS:
        # O(n): concurrent never slower, and strictly better once stalls exist.
        mpi_only = wallclock(f"O(n)/{cores}/mpi-only")
        concurrent = wallclock(f"O(n)/{cores}/concurrent")
        assert concurrent <= mpi_only * 1.02
        assert results[f"O(n)/{cores}/concurrent"].steal_fraction > 0.05
        # O(n^1.5): nothing to steal, the two methods coincide.
        assert results[f"O(n^1.5)/{cores}/concurrent"].steal_fraction < 0.05
        assert abs(
            wallclock(f"O(n^1.5)/{cores}/concurrent") - wallclock(f"O(n^1.5)/{cores}/mpi-only")
        ) <= 0.25 * wallclock(f"O(n^1.5)/{cores}/mpi-only") + 0.5
