"""Engine-throughput benchmark: the ``repro.bench.harness`` suites.

Unlike the figure benches (which regenerate paper results), this driver
measures the simulator itself through the continuous-benchmark harness and
prints the measurement next to the committed ``BENCH_<suite>.json`` baseline —
the same comparison ``python -m repro.bench`` performs, wired into the
pytest-benchmark flow so the whole ``benchmarks/`` suite leaves an engine
data point behind.

The committed baselines were measured on a specific machine, so this driver
only *reports* the delta; the hard regression gate (``--check``) runs in CI
against a baseline refreshed with ``python -m repro.bench --update``.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.bench.harness import bench_path, compare, load_result, run_suite


def test_engine_throughput_smoke(benchmark, report):
    result = benchmark.pedantic(run_suite, args=("smoke",), rounds=1, iterations=1)
    assert result.failed_scenarios == 0
    assert result.events_processed > 0

    previous = load_result(bench_path("smoke"))
    delta = compare(result, previous)
    rows = [
        ["this run", f"{result.events_per_sec:,.0f}", result.events_processed],
    ]
    if previous is not None:
        rows.append(
            ["committed baseline", f"{previous.events_per_sec:,.0f}", previous.events_processed]
        )
        rows.append(["speedup vs baseline", f"{delta['speedup']:.2f}x", ""])
        # The modelled-event count is machine-independent: a mismatch means
        # the *model* changed without refreshing BENCH_smoke.json.
        assert result.events_processed == previous.events_processed
    report(
        format_table(
            ["measurement", "events/sec", "events_processed"],
            rows,
            title="Engine throughput (bench harness, smoke suite)",
        )
    )


def test_engine_throughput_pipeline_headline(benchmark, report):
    result = benchmark.pedantic(
        run_suite, args=("pipeline",), kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    assert result.failed_scenarios == 0

    previous = load_result(bench_path("pipeline"))
    rows = [["this run (1 repeat)", f"{result.events_per_sec:,.0f}", result.events_processed]]
    if previous is not None:
        rows.append(
            [
                "committed baseline (3 repeats)",
                f"{previous.events_per_sec:,.0f}",
                previous.events_processed,
            ]
        )
        if previous.previous_events_per_sec > 0:
            rows.append(
                [
                    "baseline's own predecessor",
                    f"{previous.previous_events_per_sec:,.0f}",
                    "",
                ]
            )
    report(
        format_table(
            ["measurement", "events/sec", "events_processed"],
            rows,
            title="Engine throughput (bench harness, headline pipeline suite)",
        )
    )
