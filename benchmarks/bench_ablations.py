"""Ablation benches for the design choices called out in DESIGN.md.

These go beyond the paper's own figures and quantify each Zipper design
decision in isolation:

* fine-grain block size (1–16 MB) — the granularity/overhead trade-off;
* the work-stealing high-water mark — when the file path starts helping;
* artificial per-step interlocking — what Zipper would lose if it kept the
  baselines' barrier-per-step structure (this approximates "Zipper minus its
  asynchrony").
"""

from __future__ import annotations

from conftest import bench_data_mib, bench_workers

from repro.apps.costs import MiB, cfd_workload, synthetic_workload
from repro.bench import format_table
from repro.cluster.presets import bridges
from repro.sweep import ParamGrid, run_labelled
from repro.workflow import WorkflowConfig, run_workflow

BLOCK_SIZES = (1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB)
WATERMARKS = (4, 16, 32, 48, 63)


def run_blocksize_sweep(data_per_rank: int):
    grid = ParamGrid(
        WorkflowConfig(
            workload=cfd_workload(steps=15),
            cluster=bridges(),
            transport="zipper",
            total_cores=384,
            representative_sim_ranks=8,
            steps=15,
        ),
        axes=[("block_bytes", BLOCK_SIZES)],
        label=lambda p: f"block={p['block_bytes'] // MiB}MB",
    )
    results = run_labelled(grid, workers=bench_workers())
    return {block // MiB: results[f"block={block // MiB}MB"] for block in BLOCK_SIZES}


def test_ablation_block_size(benchmark, report):
    results = benchmark.pedantic(run_blocksize_sweep, args=(bench_data_mib() * MiB,), rounds=1, iterations=1)
    rows = [
        [f"{mb} MB", r.end_to_end_time, r.breakdown.transfer, r.breakdown.stall]
        for mb, r in results.items()
    ]
    report(
        format_table(
            ["block size", "end-to-end (s)", "transfer (s)", "stall (s)"],
            rows,
            title="Ablation: Zipper fine-grain block size (CFD, Bridges, 384 cores)",
        )
    )
    # All block sizes in the paper's 1-8 MB range stay within 25% of each other.
    times = [r.end_to_end_time for mb, r in results.items() if mb <= 8]
    assert max(times) <= min(times) * 1.25


def run_watermark_sweep(data_per_rank: int):
    grid = ParamGrid(
        WorkflowConfig(
            workload=synthetic_workload("O(n)", 1 * MiB, data_per_rank=data_per_rank),
            cluster=bridges(),
            transport="zipper",
            total_cores=588,
            representative_sim_ranks=8,
            producer_buffer_blocks=64,
        ),
        axes=[("high_water_mark", WATERMARKS)],
        label="hwm={high_water_mark}",
    )
    results = run_labelled(grid, workers=bench_workers())
    return {hwm: results[f"hwm={hwm}"] for hwm in WATERMARKS}


def test_ablation_high_water_mark(benchmark, report):
    results = benchmark.pedantic(run_watermark_sweep, args=(bench_data_mib() * MiB,), rounds=1, iterations=1)
    rows = [
        [hwm, r.end_to_end_time, 100 * r.steal_fraction, r.breakdown.stall]
        for hwm, r in results.items()
    ]
    report(
        format_table(
            ["high-water mark (blocks of 64)", "end-to-end (s)", "stolen (%)", "stall (s)"],
            rows,
            title="Ablation: work-stealing threshold for the transfer-bound O(n) producer",
        )
    )
    # A lower threshold steals more aggressively.
    assert results[4].steal_fraction >= results[63].steal_fraction


def run_interlock_comparison(steps: int = 15):
    """Zipper as designed vs Zipper forced into per-step lockstep (via DIMES-like window)."""
    base = WorkflowConfig(
        workload=cfd_workload(steps=steps),
        cluster=bridges(),
        transport="zipper",
        total_cores=384,
        representative_sim_ranks=8,
        steps=steps,
    )
    zipper = run_workflow(base)
    interlocked = run_workflow(base.replace(transport="adios+dimes", label="interlocked"))
    return zipper, interlocked


def test_ablation_interlock(benchmark, report):
    zipper, interlocked = benchmark.pedantic(run_interlock_comparison, rounds=1, iterations=1)
    report(
        format_table(
            ["variant", "end-to-end (s)", "stall (s)"],
            [
                ["zipper (no interlock)", zipper.end_to_end_time, zipper.breakdown.stall],
                ["per-step interlock (ADIOS/DIMES-style)", interlocked.end_to_end_time, interlocked.breakdown.stall],
            ],
            title="Ablation: removing per-step interlocks",
        )
    )
    assert zipper.end_to_end_time <= interlocked.end_to_end_time
