"""Figures 3 and 11: overlap of stages in the non-integrated vs integrated design.

Uses the analytical pipeline model to regenerate the schedule of Figure 11:
with four stages (Compute, Output, Input, Analysis) over ``n`` data blocks,
the non-integrated design takes ``n * sum(stage times)`` while the integrated
(pipelined) design takes ``sum(stage times) + (n - 1) * max(stage times)``.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import pipeline_makespan, pipeline_schedule, sequential_makespan

STAGES = ("compute", "output", "input", "analysis")
STAGE_TIMES = (1.0, 0.6, 0.4, 0.8)


def run_pipeline_model(num_blocks: int):
    schedule = pipeline_schedule(num_blocks, STAGE_TIMES, STAGES)
    return {
        "sequential": sequential_makespan(num_blocks, STAGE_TIMES),
        "pipelined": pipeline_makespan(num_blocks, STAGE_TIMES),
        "schedule": schedule,
    }


def test_figure11_pipeline_overlap(benchmark, report):
    num_blocks = 64
    out = benchmark.pedantic(run_pipeline_model, args=(num_blocks,), rounds=1, iterations=1)

    rows = [
        ["non-integrated (upper)", out["sequential"], 1.0],
        [
            "integrated / pipelined (lower)",
            out["pipelined"],
            out["sequential"] / out["pipelined"],
        ],
    ]
    report(
        format_table(
            ["design", f"makespan for {num_blocks} blocks (s)", "speedup"],
            rows,
            title="Figure 11: non-integrated vs integrated design "
            f"(per-block stage times {dict(zip(STAGES, STAGE_TIMES))})",
        )
    )

    # The integrated design approaches one-slowest-stage-per-block.
    assert out["pipelined"] < out["sequential"]
    assert abs(out["pipelined"] - (sum(STAGE_TIMES) + (num_blocks - 1) * max(STAGE_TIMES))) < 1e-9
    # Several blocks are in flight at once (Figure 11's caption): block 0's
    # analysis is still running when block 2's compute starts.
    schedule = out["schedule"]
    assert schedule[2]["compute"][0] < schedule[0]["analysis"][1]
