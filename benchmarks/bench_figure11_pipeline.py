"""Figures 3 and 11: overlap of stages in the non-integrated vs integrated design.

Uses the analytical pipeline model to regenerate the schedule of Figure 11:
with four stages (Compute, Output, Input, Analysis) over ``n`` data blocks,
the non-integrated design takes ``n * sum(stage times)`` while the integrated
(pipelined) design takes ``sum(stage times) + (n - 1) * max(stage times)``.

The second benchmark makes the same point with the *simulated* runtime rather
than the closed-form model: a three-stage sim → analysis → viz
:class:`~repro.workflow.pipeline.PipelineSpec` is executed end-to-end through
the discrete-event cluster simulator, and the measured makespan is compared
against the non-integrated upper bound (stages running back to back).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.bench.experiments import pipeline_chain
from repro.core import pipeline_makespan, pipeline_schedule, sequential_makespan
from repro.workflow import run_pipeline

STAGES = ("compute", "output", "input", "analysis")
STAGE_TIMES = (1.0, 0.6, 0.4, 0.8)


def run_pipeline_model(num_blocks: int):
    schedule = pipeline_schedule(num_blocks, STAGE_TIMES, STAGES)
    return {
        "sequential": sequential_makespan(num_blocks, STAGE_TIMES),
        "pipelined": pipeline_makespan(num_blocks, STAGE_TIMES),
        "schedule": schedule,
    }


def test_figure11_pipeline_overlap(benchmark, report):
    num_blocks = 64
    out = benchmark.pedantic(run_pipeline_model, args=(num_blocks,), rounds=1, iterations=1)

    rows = [
        ["non-integrated (upper)", out["sequential"], 1.0],
        [
            "integrated / pipelined (lower)",
            out["pipelined"],
            out["sequential"] / out["pipelined"],
        ],
    ]
    report(
        format_table(
            ["design", f"makespan for {num_blocks} blocks (s)", "speedup"],
            rows,
            title="Figure 11: non-integrated vs integrated design "
            f"(per-block stage times {dict(zip(STAGES, STAGE_TIMES))})",
        )
    )

    # The integrated design approaches one-slowest-stage-per-block.
    assert out["pipelined"] < out["sequential"]
    assert abs(out["pipelined"] - (sum(STAGE_TIMES) + (num_blocks - 1) * max(STAGE_TIMES))) < 1e-9
    # Several blocks are in flight at once (Figure 11's caption): block 0's
    # analysis is still running when block 2's compute starts.
    schedule = out["schedule"]
    assert schedule[2]["compute"][0] < schedule[0]["analysis"][1]


def test_figure11_simulated_pipeline_overlap(benchmark, report):
    """The simulated (not just analytic) three-stage chain overlaps its stages."""
    pipeline = pipeline_chain(total_cores=384, steps=6, trace=False)

    result = benchmark.pedantic(run_pipeline, args=(pipeline,), rounds=1, iterations=1)
    assert not result.failed

    per_stage = {
        name: b.simulation + b.analysis for name, b in result.stage_breakdowns.items()
    }
    sequential_bound = sum(per_stage.values())
    rows = [
        [name, busy, 100.0 * busy / result.end_to_end_time]
        for name, busy in per_stage.items()
    ]
    rows.append(["non-integrated (sum of stages)", sequential_bound, ""])
    rows.append(["integrated / simulated makespan", result.end_to_end_time, ""])
    report(
        format_table(
            ["stage", "busy time (s)", "% of makespan"],
            rows,
            title="Figure 11 (simulated): sim -> analysis -> viz chain through "
            f"{' + '.join(sorted(set(result.coupling_transports.values())))}",
        )
    )

    # Pipelining: the measured end-to-end time beats running the three stage
    # kernels back to back, yet cannot beat the slowest stage alone.
    assert result.end_to_end_time < sequential_bound
    assert result.end_to_end_time >= max(per_stage.values())
    # Every coupling moved real data through its own transport channel.
    for name, stats in result.coupling_stats.items():
        moved = stats.get("bytes_network", 0.0) + stats.get("bytes_file", 0.0)
        assert moved > 0, name
