"""Model-driven vs threshold elastic policies on the bursty-analytics grid.

Regenerates the headline comparison of the model-driven layer: the same
bursty CFD pipeline and static core grants as ``bench_elastic.py``, but the
contest is now between the two *elastic* decision layers — the PR 3
threshold (bang-bang) :class:`~repro.elastic.ElasticPolicy` and the
predictive :class:`~repro.elastic.ModelDrivenPolicy`, which calibrates the
:class:`~repro.perfmodel.pipeline.PipelinePerfModel` online and approaches
its optimal split through a PID smoother with a hysteresis dead band.  What
to look for in the output:

* the model-driven runs match or beat every threshold makespan on the grid;
* they do it with a fraction of the rebalance events — the dead band and
  the damped approach remove the threshold controller's oscillation around
  balance (compare the event counts, grant by grant);
* the model runs' makespans barely depend on the starting grant: the
  controller converges to the model's split from any initial condition.
"""

from __future__ import annotations

from conftest import bench_steps, bench_workers

from repro.bench import format_table
from repro.bench.experiments import model_vs_threshold_configs
from repro.sweep import run_labelled


def run_model_vs_threshold(steps: int):
    """Run the threshold-vs-model grid through the sweep engine."""
    return run_labelled(model_vs_threshold_configs(steps=steps), workers=bench_workers())


def test_model_vs_threshold_bursty_analytics(benchmark, report):
    steps = bench_steps(24)
    results = benchmark.pedantic(
        run_model_vs_threshold, args=(steps,), rounds=1, iterations=1
    )

    rows = []
    for label, result in sorted(results.items(), key=lambda kv: kv[1].end_to_end_time):
        rows.append(
            [
                label,
                result.end_to_end_time,
                len(result.rebalances),
                "FAILED" if result.failed else "",
            ]
        )
    report(
        format_table(
            ["scenario", "end-to-end (s)", "rebalances", "status"],
            rows,
            title=(
                f"Model-driven vs threshold elastic policies ({steps} steps): "
                "bursty CFD analytics on Bridges"
            ),
        )
    )

    threshold = {k: v for k, v in results.items() if k.startswith("threshold/")}
    model = {k: v for k, v in results.items() if k.startswith("model/")}
    best_threshold = min(r.end_to_end_time for r in threshold.values())
    best_model = min(r.end_to_end_time for r in model.values())
    assert best_model <= best_threshold
    assert sum(len(r.rebalances) for r in model.values()) < sum(
        len(r.rebalances) for r in threshold.values()
    )
