"""Multi-tenant co-scheduling: the contention figure and the identity gate.

Regenerates the tenant layer's evaluation on one shared 384-core facility.
Every scenario replays the *same* heterogeneous job queue — one long heavy
``batch`` job holding most of the facility from time zero plus a ``burst``
tenant's short light jobs arriving shortly after — so the policy comparison
differs only in how the facility is partitioned.  The two figures:

* **fair share vs FCFS on the contended grid** — under ``fcfs`` the short
  jobs' demand exceeds the free remainder and they block behind the batch
  job (head-of-line), inflating their slowdowns; ``fair`` water-fills the
  capacity across the active set, so it wins on aggregate slowdown, mean
  wait and Jain fairness for both arrival patterns;
* **the solo identity gate** — a tenant's job run alone through the tenant
  layer must reproduce the dedicated (pre-tenant) engine's result payload
  byte for byte, which pins the layer's overhead at exactly zero modelled
  events.
"""

from __future__ import annotations

import json

from conftest import bench_steps, bench_workers

from repro.bench import format_table
from repro.bench.experiments import tenant_contention_configs
from repro.sweep import run_labelled
from repro.sweep.store import result_payload
from repro.tenants import TenantScheduler, TenantSpec
from repro.workflow.runner import run_pipeline


def run_tenant_grid(steps: int):
    return run_labelled(tenant_contention_configs(steps=steps), workers=bench_workers())


def solo_payloads(steps: int):
    """Per-tenant ``(through the tenant layer, dedicated engine)`` payloads.

    Takes one representative pipeline per tenant from the contention grid,
    runs it as a single arrival-at-zero job on an exactly-fitting facility,
    and flattens both results through the sweep store's serialiser so the
    comparison covers every recorded field (stats, breakdowns, event counts).
    """
    pairs = {}
    for label, spec in tenant_contention_configs(steps=steps):
        if label != "fair/bursty":
            continue
        for job in spec.jobs:
            if job.tenant in pairs:
                continue
            solo = TenantSpec(
                jobs=(job.replace(arrival=0.0),),
                policy=spec.policy,
                capacity_cores=0,
                epoch_seconds=spec.epoch_seconds,
                label=f"solo/{job.tenant}",
            )
            scheduler = TenantScheduler(solo)
            scheduler.run()
            via_tenants = scheduler.job_results[solo.jobs[0].name]
            dedicated = run_pipeline(job.pipeline)
            pairs[job.tenant] = (
                json.dumps(result_payload(via_tenants), sort_keys=True),
                json.dumps(result_payload(dedicated), sort_keys=True),
            )
    return pairs


def test_fair_share_beats_fcfs_on_contended_grid(benchmark, report):
    steps = bench_steps(8)
    results = benchmark.pedantic(run_tenant_grid, args=(steps,), rounds=1, iterations=1)

    rows = []
    for label, result in sorted(results.items()):
        rows.append(
            [
                label,
                round(result.stats["aggregate_slowdown"], 3),
                round(result.stats["fairness_jain"], 3),
                round(result.stats["mean_wait"], 2),
                round(result.end_to_end_time, 2),
            ]
        )
    report(
        format_table(
            ["scenario", "aggregate slowdown", "Jain index", "mean wait (s)", "makespan (s)"],
            rows,
            title=(
                f"Fair share vs FCFS on one contended facility ({steps} steps): "
                "identical job queue per arrival pattern"
            ),
        )
    )

    for result in results.values():
        assert not result.failed
    # The short jobs cannot start under FCFS until the batch job releases
    # its cores, so fair share wins the aggregate for both arrival patterns
    # (the bursty column is the paper-style head-of-line figure).
    for arrivals in ("bursty", "poisson"):
        fcfs = results[f"fcfs/{arrivals}"].stats
        fair = results[f"fair/{arrivals}"].stats
        assert fair["aggregate_slowdown"] < fcfs["aggregate_slowdown"]
        assert fair["mean_wait"] < fcfs["mean_wait"]
        assert fair["fairness_jain"] >= fcfs["fairness_jain"]


def test_solo_tenant_runs_bit_identical_to_dedicated_engine(benchmark, report):
    steps = bench_steps(8)
    pairs = benchmark.pedantic(solo_payloads, args=(steps,), rounds=1, iterations=1)

    rows = []
    for tenant, (via_tenants, dedicated) in sorted(pairs.items()):
        events = json.loads(via_tenants)["stats"]["events_processed"]
        rows.append(
            [tenant, int(events), len(via_tenants), via_tenants == dedicated]
        )
    report(
        format_table(
            ["tenant", "events processed", "payload bytes", "bit-identical"],
            rows,
            title=(
                f"Solo tenant runs vs the dedicated engine ({steps} steps): "
                "serialised result payloads must match byte for byte"
            ),
        )
    )

    assert pairs
    for tenant, (via_tenants, dedicated) in pairs.items():
        assert via_tenants == dedicated, f"tenant {tenant} diverged from dedicated run"
