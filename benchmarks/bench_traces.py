"""Trace figures 4, 5, 6, 17 and 19: where each transport loses time.

The paper uses TAU / Intel Trace Analyzer snapshots to expose each baseline's
inefficiency.  These benches regenerate the same comparisons from the
simulator's tracer:

* Figure 4 — native DIMES: a lengthy lock period during data insertion.
* Figure 5 — Flexpath: the simulation's ``MPI_Sendrecv`` time inflates once
  the event-channel traffic shares the fabric.
* Figure 6 — Decaf: the ``PUT``/``MPI_Waitall`` stalls the simulation and
  inflates ``MPI_Sendrecv``.
* Figure 17 — Zipper vs Decaf on 204 cores: Zipper fits ~3 CFD steps into the
  window where Decaf fits ~2.
* Figure 19 — Zipper vs Decaf on 13,056 cores (LAMMPS): Zipper fits roughly
  twice as many steps into the window.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.bench.experiments import trace_config
from repro.trace import Timeline, compare_traces, render_ascii, summarize_categories
from repro.workflow import run_workflow


def _traced_run(transport: str, workload: str = "cfd", cores: int = 204, steps: int = 10):
    return run_workflow(trace_config(transport, workload, total_cores=cores, steps=steps))


def run_baseline_traces():
    return {
        "none": _traced_run("none"),
        "dimes": _traced_run("dimes"),
        "flexpath": _traced_run("flexpath"),
        "decaf": _traced_run("decaf"),
        "zipper": _traced_run("zipper"),
    }


def test_figures_4_5_6_baseline_traces(benchmark, report):
    results = benchmark.pedantic(run_baseline_traces, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        cats = summarize_categories(result.tracer, rank=0)
        rows.append(
            [
                name,
                round(cats.get("sendrecv", 0.0), 3),
                round(cats.get("lock", 0.0) + cats.get("stall", 0.0), 3),
                round(cats.get("waitall", 0.0), 3),
                round(cats.get("put", 0.0), 3),
                round(result.end_to_end_time, 2),
            ]
        )
    report(
        format_table(
            ["transport", "MPI_Sendrecv (s)", "lock+stall (s)", "MPI_Waitall (s)", "PUT (s)", "end-to-end (s)"],
            rows,
            title="Figures 4/5/6: per-rank (rank 0) category times from the traces",
        )
    )

    sendrecv_alone = summarize_categories(results["none"].tracer, rank=0).get("sendrecv", 0.0)
    sendrecv_flexpath = summarize_categories(results["flexpath"].tracer, rank=0).get("sendrecv", 0.0)
    sendrecv_decaf = summarize_categories(results["decaf"].tracer, rank=0).get("sendrecv", 0.0)
    # Figure 5/6: staging traffic inflates the simulation's MPI_Sendrecv time.
    assert sendrecv_flexpath >= sendrecv_alone
    assert sendrecv_decaf >= sendrecv_alone
    # Figure 6: Decaf's PUT is dominated by MPI_Waitall stalls.
    assert summarize_categories(results["decaf"].tracer, rank=0).get("waitall", 0.0) > 0
    # Figure 4: DIMES shows lock/stall periods that Zipper does not have.
    dimes_lock = summarize_categories(results["dimes"].tracer, rank=0).get("lock", 0.0)
    zipper_lock = summarize_categories(results["zipper"].tracer, rank=0).get("lock", 0.0)
    assert dimes_lock >= zipper_lock


def run_trace_comparisons():
    out = {}
    out["fig17"] = (
        _traced_run("zipper", "cfd", 204, steps=10),
        _traced_run("decaf", "cfd", 204, steps=10),
    )
    out["fig19"] = (
        _traced_run("zipper", "lammps", 13056, steps=8),
        _traced_run("decaf", "lammps", 13056, steps=8),
    )
    return out


def test_figures_17_19_zipper_vs_decaf_traces(benchmark, report):
    out = benchmark.pedantic(run_trace_comparisons, rounds=1, iterations=1)

    lines = []
    for name, window in (("fig17", 1.3), ("fig19", 9.1)):
        zipper, decaf = out[name]
        cmp = compare_traces(zipper.tracer, decaf.tracer, window=window, rank=0)
        lines.append(
            [
                name,
                round(cmp["steps_a"], 2),
                round(cmp["steps_b"], 2),
                round(cmp["ratio"], 2),
            ]
        )
    report(
        format_table(
            ["figure", "zipper steps in window", "decaf steps in window", "zipper/decaf"],
            lines,
            title="Figures 17 and 19: steps completed within the paper's snapshot windows",
        )
    )
    report("Figure 17 timeline (Zipper, rank 0):")
    report(render_ascii(Timeline(out["fig17"][0].tracer), width=96, ranks=[0]))
    report("Figure 17 timeline (Decaf, rank 0):")
    report(render_ascii(Timeline(out["fig17"][1].tracer), width=96, ranks=[0]))

    for name in ("fig17", "fig19"):
        zipper, decaf = out[name]
        cmp = compare_traces(zipper.tracer, decaf.tracer, window=9.1, rank=0)
        # Zipper completes more steps than Decaf in the same wall-clock window.
        assert cmp["ratio"] > 1.1
