"""Figure 18: LAMMPS weak-scaling on Stampede2 (204 to 13,056 cores).

End-to-end time of the Lennard-Jones melt + MSD workflow under MPI-IO,
Flexpath, Decaf and Zipper.  The paper's findings to check:

* Zipper again tracks the simulation-only lower bound;
* Decaf runs at all scales (the LAMMPS element counts stay below the 32-bit
  limit) but degrades past 1,632 cores, ending up ~2.2x slower than Zipper at
  13,056 cores — the paper's headline result;
* Flexpath is several times slower than Zipper throughout.
"""

from __future__ import annotations

from conftest import bench_steps, bench_workers

from repro.bench import format_table
from repro.bench.experiments import SCALABILITY_CORE_COUNTS, figure18_configs
from repro.sweep import run_labelled


def run_figure18(steps: int):
    return run_labelled(figure18_configs(steps=steps), workers=bench_workers())


def test_figure18_lammps_weak_scaling(benchmark, report):
    steps = bench_steps()
    results = benchmark.pedantic(run_figure18, args=(steps,), rounds=1, iterations=1)

    transports = ("mpiio", "flexpath", "decaf", "zipper", "none")
    rows = []
    for cores in SCALABILITY_CORE_COUNTS:
        row = [cores]
        for transport in transports:
            result = results[f"lammps/{cores}/{transport}"]
            row.append("FAIL" if result.failed else round(result.end_to_end_time, 1))
        zipper = results[f"lammps/{cores}/zipper"].end_to_end_time
        decaf = results[f"lammps/{cores}/decaf"]
        row.append(round(decaf.end_to_end_time / zipper, 2) if not decaf.failed else "-")
        rows.append(row)
    report(
        format_table(
            ["cores"] + [t if t != "none" else "simulation-only" for t in transports] + ["decaf/zipper"],
            rows,
            title=f"Figure 18: LAMMPS weak scaling on Stampede2 ({steps} steps)",
        )
    )

    for cores in SCALABILITY_CORE_COUNTS:
        zipper = results[f"lammps/{cores}/zipper"]
        decaf = results[f"lammps/{cores}/decaf"]
        sim_only = results[f"lammps/{cores}/none"]
        assert not decaf.failed  # LAMMPS stays under the integer limit
        assert zipper.end_to_end_time <= sim_only.end_to_end_time * 1.25
        assert zipper.end_to_end_time < decaf.end_to_end_time
        assert zipper.end_to_end_time < results[f"lammps/{cores}/flexpath"].end_to_end_time
    # Decaf's gap to Zipper widens with scale (the paper reports up to 2.2x).
    small_gap = (
        results["lammps/204/decaf"].end_to_end_time
        / results["lammps/204/zipper"].end_to_end_time
    )
    large_gap = (
        results["lammps/13056/decaf"].end_to_end_time
        / results["lammps/13056/zipper"].end_to_end_time
    )
    assert large_gap > small_gap
    assert large_gap > 1.5
