"""Figure 15: XmitWait network-congestion counters for the Figure 14 runs.

The paper verifies the cause of the concurrent-transfer speedup with the
Omni-Path ``XmitWait`` counter ("number of events when any virtual lane had
data but was unable to transmit").  This bench reruns the Figure 14
configurations and reports the counter, checking the paper's observations:

* for the O(n) producer the message-passing-only method shows a larger
  XmitWait than the concurrent method (the file path relieves congestion);
* for O(n^{3/2}) the counter is orders of magnitude smaller and the two
  methods coincide;
* congestion grows with the number of cores.
"""

from __future__ import annotations

from conftest import bench_data_mib, bench_workers

from repro.bench import format_table
from repro.bench.experiments import figure14_configs
from repro.sweep import run_labelled

MiB = 1024 * 1024
CORE_COUNTS = (84, 336, 2352)


def run_figure15(data_per_rank: int):
    return run_labelled(
        figure14_configs(data_per_rank=data_per_rank, core_counts=CORE_COUNTS),
        workers=bench_workers(),
    )


def test_figure15_xmitwait_congestion(benchmark, report):
    data_per_rank = bench_data_mib() * MiB
    results = benchmark.pedantic(run_figure15, args=(data_per_rank,), rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        rows.append([label, f"{result.xmit_wait:.3e}", f"{100 * result.steal_fraction:.1f}%"])
    report(
        format_table(
            ["config", "XmitWait (flit-times, full job)", "stolen"],
            rows,
            title="Figure 15: network congestion (XmitWait) per configuration",
        )
    )

    # Message-passing-only congests at least as much as the concurrent method
    # for the transfer-bound O(n) producer.
    for cores in CORE_COUNTS:
        assert (
            results[f"O(n)/{cores}/mpi-only"].xmit_wait
            >= results[f"O(n)/{cores}/concurrent"].xmit_wait * 0.95
        )
        # The compute-bound producer congests the fabric far less than the
        # transfer-bound one (the paper reports a ~1000x gap on real hardware;
        # the simulator's counter also accumulates benign queueing, so the
        # check here is directional rather than order-of-magnitude).
        assert (
            results[f"O(n^1.5)/{cores}/concurrent"].xmit_wait
            < results[f"O(n)/{cores}/concurrent"].xmit_wait / 1.5
        )
    # Congestion grows with scale for the O(n) producer.
    assert (
        results["O(n)/2352/mpi-only"].xmit_wait > results["O(n)/84/mpi-only"].xmit_wait
    )
