"""Elastic vs static core splits on the bursty-analytics pipeline.

Regenerates the elastic layer's headline comparison: a CFD simulation coupled
to an analysis whose cost spikes periodically (in-situ rendering /
checkpoint-analysis pattern).  For every static core grant the sweep runs the
fixed split and the same split with the elastic controller enabled.  What to
look for in the output:

* among the static splits there is an interior optimum — grants that serve
  the bursts starve the simulation between them, and vice versa;
* every elastic run at least matches its static twin, and the best elastic
  run beats the *best* static grant (the optimal split is time-varying);
* the rebalance counts show the controller shifting cores towards the
  analysis during bursts and back afterwards.
"""

from __future__ import annotations

from conftest import bench_steps, bench_workers

from repro.bench import format_table
from repro.bench.experiments import elastic_vs_static_configs
from repro.sweep import run_labelled


def run_elastic(steps: int):
    return run_labelled(elastic_vs_static_configs(steps=steps), workers=bench_workers())


def test_elastic_vs_static_bursty_analytics(benchmark, report):
    steps = bench_steps(24)
    results = benchmark.pedantic(run_elastic, args=(steps,), rounds=1, iterations=1)

    rows = []
    for label, result in sorted(results.items(), key=lambda kv: kv[1].end_to_end_time):
        rows.append(
            [
                label,
                result.end_to_end_time,
                len(result.rebalances),
                "FAILED" if result.failed else "",
            ]
        )
    report(
        format_table(
            ["scenario", "end-to-end (s)", "rebalances", "status"],
            rows,
            title=(
                f"Elastic vs static core splits ({steps} steps): bursty CFD "
                "analytics on Bridges"
            ),
        )
    )

    best_static = min(
        r.end_to_end_time for label, r in results.items() if label.startswith("static/")
    )
    best_elastic = min(
        r.end_to_end_time for label, r in results.items() if label.startswith("elastic/")
    )
    assert best_elastic < best_static
