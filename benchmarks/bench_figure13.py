"""Figure 13: performance-model validation in the Preserve mode.

Same configurations as Figure 12, but every computed block is also persisted
to the parallel file system.  The paper's finding: the end-to-end time becomes
almost equal to the time spent storing the results, since writing the full
3,136 GB dominates every other stage.
"""

from __future__ import annotations

from conftest import bench_data_mib, bench_workers

from repro.bench import format_table
from repro.bench.experiments import figure13_configs
from repro.sweep import run_labelled

MiB = 1024 * 1024


def run_figure13(data_per_rank: int):
    return run_labelled(figure13_configs(data_per_rank=data_per_rank), workers=bench_workers())


def test_figure13_preserve_breakdown(benchmark, report):
    data_per_rank = bench_data_mib() * MiB
    results = benchmark.pedantic(run_figure13, args=(data_per_rank,), rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        rows.append(
            [
                label,
                result.breakdown.simulation,
                result.breakdown.transfer,
                result.breakdown.store,
                result.breakdown.analysis,
                result.end_to_end_time,
                result.breakdown.dominant(),
            ]
        )
    report(
        format_table(
            ["config", "sim (s)", "transfer (s)", "store (s)", "analysis (s)", "end-to-end (s)", "dominant"],
            rows,
            title=f"Figure 13 (Preserve, {data_per_rank // MiB} MiB/rank): storing data dominates",
        )
    )

    # In Preserve mode the store stage dominates for the cheap producers and
    # every run persisted all of its blocks.
    for label, result in results.items():
        assert result.stats.get("blocks_preserved", 0) + result.stats.get("blocks_stolen", 0) >= result.stats.get(
            "blocks_produced", 0
        ) * 0.999
    assert results["O(n)/1MB"].breakdown.dominant() == "store"
    # Preserve-mode end-to-end exceeds the matching No-Preserve stage times.
    assert results["O(n)/1MB"].end_to_end_time >= results["O(n)/1MB"].breakdown.transfer
