"""Figure 12: performance-model validation in the No-Preserve mode.

Three synthetic applications — O(n), O(n log n), O(n^{3/2}) — coupled to a
standard-variance analysis through Zipper on Bridges (1,568 simulation cores +
784 analysis cores represented), with 1 MB and 8 MB blocks.  The paper's
claims to check: as the producer's time complexity increases, the dominant
stage switches from data transfer to simulation, and the measured end-to-end
time always stays close to ``max(T_comp, T_transfer, T_analysis)`` — the
analytical model of Section 4.4.
"""

from __future__ import annotations

from conftest import bench_data_mib, bench_workers

from repro.bench import format_table
from repro.bench.experiments import figure12_configs
from repro.core import PerformanceModel, StageTimes
from repro.sweep import run_labelled

MiB = 1024 * 1024


def run_figure12(data_per_rank: int):
    configs = figure12_configs(data_per_rank=data_per_rank)
    results = run_labelled(configs, workers=bench_workers())
    return {label: (cfg, results[label]) for label, cfg in configs}


def _model_estimate(cfg, result):
    """Analytical estimate fed with the per-block stage times measured in the run."""
    workload = cfg.workload
    blocks = workload.steps
    stage = StageTimes(
        compute=result.breakdown.simulation / blocks,
        transfer=result.breakdown.transfer / blocks,
        analysis=result.breakdown.analysis / max(1, blocks * cfg.sim_ranks // max(1, cfg.analysis_ranks)),
        store=result.breakdown.store / blocks,
    )
    model = PerformanceModel(
        P=cfg.sim_ranks,
        Q=cfg.analysis_ranks,
        total_data=workload.output_bytes_per_step * blocks * cfg.sim_ranks,
        block_size=cfg.effective_block_bytes,
        stage=StageTimes(
            compute=stage.compute * cfg.sim_ranks,
            transfer=stage.transfer * cfg.sim_ranks,
            analysis=stage.analysis * cfg.analysis_ranks,
            store=stage.store * cfg.sim_ranks,
        ),
        preserve=cfg.preserve,
    )
    return model


def test_figure12_no_preserve_breakdown(benchmark, report):
    data_per_rank = bench_data_mib() * MiB
    results = benchmark.pedantic(run_figure12, args=(data_per_rank,), rounds=1, iterations=1)

    rows = []
    for label, (cfg, result) in results.items():
        model = _model_estimate(cfg, result)
        rows.append(
            [
                label,
                result.breakdown.simulation,
                result.breakdown.transfer,
                result.breakdown.analysis,
                result.end_to_end_time,
                model.time_to_solution(),
                result.breakdown.dominant(),
            ]
        )
    report(
        format_table(
            ["config", "sim (s)", "transfer (s)", "analysis (s)", "end-to-end (s)", "model max-stage (s)", "dominant"],
            rows,
            title=f"Figure 12 (No Preserve, {data_per_rank // MiB} MiB/rank): time breakdown per stage",
        )
    )

    # Dominant-stage switch: O(n) is transfer-bound, O(n^1.5) is simulation-bound.
    by_label = {label: res for label, (cfg, res) in results.items()}
    assert by_label["O(n)/1MB"].breakdown.dominant() == "transfer"
    assert by_label["O(n^1.5)/1MB"].breakdown.dominant() == "simulation"
    # The end-to-end time stays close to the largest stage (within 35%).
    for label, (cfg, result) in results.items():
        largest = max(
            result.breakdown.simulation + result.breakdown.stall,
            result.breakdown.transfer,
            result.breakdown.analysis,
        )
        assert result.end_to_end_time <= largest * 1.35 + 1.0
